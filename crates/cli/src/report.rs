//! Output formatting for the CLI: the human-readable run report and the
//! labels CSV.

use std::io::Write;
use std::path::Path;

use proclus::metrics::{adjusted_rand_index, normalized_mutual_information};
use proclus::telemetry::TelemetryReport;
use proclus::DataMatrix;

use crate::run::RunOutcome;

/// Renders the report for a (possibly swept) cluster command. `label`
/// names the configuration, e.g. `fast on gpu`.
pub fn render(
    data: &DataMatrix,
    label: &str,
    outcomes: &[RunOutcome],
    truth: Option<&[i32]>,
    out_path: Option<&str>,
) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "clustered {} points x {} dims with `{label}`\n\n",
        data.n(),
        data.d()
    ));
    for o in outcomes {
        let c = &o.clustering;
        s.push_str(&format!(
            "k = {:<3} cost {:>9.5}  refined {:>9.5}  iterations {:>3}  outliers {:>6}",
            o.k,
            c.cost,
            c.refined_cost,
            c.iterations,
            c.num_outliers()
        ));
        if let Some(sim) = o.sim_ms {
            s.push_str(&format!("  [{sim:>8.3} ms simulated device]"));
        } else {
            s.push_str(&format!("  [{:>8.1} ms wall]", o.wall_ms));
        }
        if let Some(truth) = truth {
            s.push_str(&format!(
                "  ARI {:.3} NMI {:.3}",
                adjusted_rand_index(truth, &c.labels),
                normalized_mutual_information(truth, &c.labels)
            ));
        }
        s.push('\n');
    }

    let best = outcomes
        .iter()
        .min_by(|x, y| {
            x.clustering
                .refined_cost
                .total_cmp(&y.clustering.refined_cost)
        })
        .expect("non-empty");
    s.push_str(&format!("\nbest by refined cost: k = {}\n", best.k));
    for (i, sub) in best.clustering.subspaces.iter().enumerate() {
        s.push_str(&format!(
            "  cluster {i:<3} size {:>7}  subspace {:?}\n",
            best.clustering.cluster_sizes()[i],
            sub
        ));
    }
    if let Some(p) = out_path {
        s.push_str(&format!("labels of the best run written to {p}\n"));
    }
    s
}

/// Renders the per-phase time table of a telemetry report: one row per
/// distinct span name with its invocation count, summed wall-clock time,
/// and (for GPU runs) summed simulated device time.
pub fn render_phase_table(report: &TelemetryReport) -> String {
    let rows = report.phase_table();
    if rows.is_empty() {
        return String::new();
    }
    let width = rows.iter().map(|r| r.name.len()).max().unwrap_or(5).max(5);
    let mut s = format!(
        "\n{:<width$}  {:>6}  {:>11}  {:>11}\n",
        "phase", "calls", "total ms", "sim ms"
    );
    for r in rows {
        s.push_str(&format!(
            "{:<width$}  {:>6}  {:>11.3}  {:>11.3}\n",
            r.name,
            r.count,
            r.total_ms,
            r.sim_us / 1e3
        ));
    }
    s
}

/// Writes one label per line.
pub fn write_labels(path: &Path, labels: &[i32]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for l in labels {
        writeln!(f, "{l}")?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus::Clustering;

    fn outcome(k: usize, cost: f64) -> RunOutcome {
        RunOutcome {
            k,
            clustering: Clustering {
                medoids: (0..k).collect(),
                subspaces: vec![vec![0, 1]; k],
                labels: vec![0; 10],
                cost,
                refined_cost: cost,
                iterations: 5,
                converged: true,
            },
            wall_ms: 1.5,
            sim_ms: None,
            telemetry: None,
        }
    }

    #[test]
    fn render_lists_all_k_and_marks_best() {
        let data = DataMatrix::from_flat(vec![0.0; 20], 10, 2).unwrap();
        let outcomes = vec![outcome(2, 0.5), outcome(3, 0.2)];
        let s = render(&data, "fast on cpu", &outcomes, None, None);
        assert!(s.contains("`fast on cpu`"));
        assert!(s.contains("k = 2"));
        assert!(s.contains("k = 3"));
        assert!(s.contains("best by refined cost: k = 3"));
    }

    #[test]
    fn render_includes_truth_metrics_when_given() {
        let data = DataMatrix::from_flat(vec![0.0; 20], 10, 2).unwrap();
        let truth = vec![0i32; 10];
        let s = render(&data, "fast on cpu", &[outcome(2, 0.1)], Some(&truth), None);
        assert!(s.contains("ARI"));
    }

    #[test]
    fn phase_table_lists_each_span_name_once() {
        use proclus::telemetry::{span, Telemetry};
        let tel = Telemetry::new();
        {
            let _run = span(&tel, "run");
            for _ in 0..3 {
                let _p = span(&tel, "assign_points");
            }
        }
        let s = render_phase_table(&tel.finish());
        assert!(s.contains("phase"), "{s}");
        assert_eq!(s.matches("assign_points").count(), 1, "{s}");
        assert_eq!(s.matches("run").count(), 1, "{s}");
    }

    #[test]
    fn labels_file_has_one_line_per_point() {
        let path = std::env::temp_dir().join(format!("labels-{}.csv", std::process::id()));
        write_labels(&path, &[0, 1, -1]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "0\n1\n-1\n");
        std::fs::remove_file(path).ok();
    }
}
