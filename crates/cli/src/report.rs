//! Output formatting for the CLI: the human-readable run report and the
//! labels CSV.

use std::io::Write;
use std::path::Path;

use proclus::metrics::{adjusted_rand_index, normalized_mutual_information};
use proclus::DataMatrix;

use crate::args::Engine;
use crate::run::RunOutcome;

/// Renders the report for a (possibly swept) cluster command.
pub fn render(
    data: &DataMatrix,
    engine: Engine,
    outcomes: &[RunOutcome],
    truth: Option<&[i32]>,
    out_path: Option<&str>,
) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "clustered {} points x {} dims with engine `{engine}`\n\n",
        data.n(),
        data.d()
    ));
    for o in outcomes {
        let c = &o.clustering;
        s.push_str(&format!(
            "k = {:<3} cost {:>9.5}  refined {:>9.5}  iterations {:>3}  outliers {:>6}",
            o.k,
            c.cost,
            c.refined_cost,
            c.iterations,
            c.num_outliers()
        ));
        if let Some(sim) = o.sim_ms {
            s.push_str(&format!("  [{sim:>8.3} ms simulated device]"));
        } else {
            s.push_str(&format!("  [{:>8.1} ms wall]", o.wall_ms));
        }
        if let Some(truth) = truth {
            s.push_str(&format!(
                "  ARI {:.3} NMI {:.3}",
                adjusted_rand_index(truth, &c.labels),
                normalized_mutual_information(truth, &c.labels)
            ));
        }
        s.push('\n');
    }

    let best = outcomes
        .iter()
        .min_by(|x, y| {
            x.clustering
                .refined_cost
                .total_cmp(&y.clustering.refined_cost)
        })
        .expect("non-empty");
    s.push_str(&format!("\nbest by refined cost: k = {}\n", best.k));
    for (i, sub) in best.clustering.subspaces.iter().enumerate() {
        s.push_str(&format!(
            "  cluster {i:<3} size {:>7}  subspace {:?}\n",
            best.clustering.cluster_sizes()[i],
            sub
        ));
    }
    if let Some(p) = out_path {
        s.push_str(&format!("labels of the best run written to {p}\n"));
    }
    s
}

/// Writes one label per line.
pub fn write_labels(path: &Path, labels: &[i32]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for l in labels {
        writeln!(f, "{l}")?;
    }
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus::Clustering;

    fn outcome(k: usize, cost: f64) -> RunOutcome {
        RunOutcome {
            k,
            clustering: Clustering {
                medoids: (0..k).collect(),
                subspaces: vec![vec![0, 1]; k],
                labels: vec![0; 10],
                cost,
                refined_cost: cost,
                iterations: 5,
                converged: true,
            },
            wall_ms: 1.5,
            sim_ms: None,
        }
    }

    #[test]
    fn render_lists_all_k_and_marks_best() {
        let data = DataMatrix::from_flat(vec![0.0; 20], 10, 2).unwrap();
        let outcomes = vec![outcome(2, 0.5), outcome(3, 0.2)];
        let s = render(&data, Engine::Fast, &outcomes, None, None);
        assert!(s.contains("k = 2"));
        assert!(s.contains("k = 3"));
        assert!(s.contains("best by refined cost: k = 3"));
    }

    #[test]
    fn render_includes_truth_metrics_when_given() {
        let data = DataMatrix::from_flat(vec![0.0; 20], 10, 2).unwrap();
        let truth = vec![0i32; 10];
        let s = render(&data, Engine::Fast, &[outcome(2, 0.1)], Some(&truth), None);
        assert!(s.contains("ARI"));
    }

    #[test]
    fn labels_file_has_one_line_per_point() {
        let path = std::env::temp_dir().join(format!("labels-{}.csv", std::process::id()));
        write_labels(&path, &[0, 1, -1]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "0\n1\n-1\n");
        std::fs::remove_file(path).ok();
    }
}
