//! Command execution: load → cluster → report.
//!
//! Every variant/backend combination is reached through the unified
//! `proclus::run` / `proclus_gpu::run_on` entry points, so this module
//! contains no per-engine dispatch: it builds a [`proclus::Config`],
//! runs it, and maps the one [`proclus::ProclusError`] type onto the
//! process exit codes in [`crate::exit`].

use std::path::Path;

use gpu_sim::{Device, DeviceConfig, SanitizerMode};
use proclus::telemetry::TelemetryReport;
use proclus::{Backend, Clustering, Config, DataMatrix, Params, ProclusError, RunOutput};

use crate::args::{Cli, Command};
use crate::report;

/// One sweep entry's outcome.
pub struct RunOutcome {
    /// `k` used.
    pub k: usize,
    /// The clustering.
    pub clustering: Clustering,
    /// CPU wall-clock in ms.
    pub wall_ms: f64,
    /// Simulated device time in ms (GPU backend only).
    pub sim_ms: Option<f64>,
    /// The recorded span tree, when `--telemetry`/`--chrome-trace` asked
    /// for one.
    pub telemetry: Option<TelemetryReport>,
}

fn device_for(name: &str) -> Result<DeviceConfig, String> {
    match name {
        "gtx1660ti" | "1660ti" => Ok(DeviceConfig::gtx_1660_ti()),
        "rtx3090" | "3090" => Ok(DeviceConfig::rtx_3090()),
        other => Err(format!("unknown device `{other}` (gtx1660ti | rtx3090)")),
    }
}

/// Maps the unified error type onto a process exit code: bad input is the
/// user's problem (`INVALID`), everything the environment refuses is
/// `DEVICE`.
fn exit_for(e: &ProclusError) -> i32 {
    match e {
        ProclusError::InvalidParams { .. }
        | ProclusError::InvalidData { .. }
        | ProclusError::DimensionalityExceeded { .. } => crate::exit::INVALID,
        ProclusError::Unsupported { .. } | ProclusError::Device { .. } => crate::exit::DEVICE,
        ProclusError::Cancelled { .. } => crate::exit::CANCELLED,
    }
}

/// What one configuration's run leaves behind: the run output, the
/// simulated device time (GPU only) and any sanitizer hazards.
type ConfigRun = (RunOutput, Option<f64>, Vec<String>);

/// Runs one configuration on its backend.
fn run_config(
    data: &DataMatrix,
    config: &Config,
    device: &str,
    sanitize: SanitizerMode,
) -> Result<ConfigRun, (i32, String)> {
    match config.backend {
        Backend::Cpu => proclus::run(data, config)
            .map(|o| (o, None, Vec::new()))
            .map_err(|e| (exit_for(&e), e.to_string())),
        Backend::Gpu | Backend::Sharded => {
            let cfg = device_for(device).map_err(|e| (crate::exit::DEVICE, e))?;
            let mut dev = Device::new(cfg);
            dev.set_sanitizer(sanitize);
            let output = proclus_gpu::run_on(&mut dev, data, config)
                .map_err(|e| (exit_for(&e), e.to_string()))?;
            let hazards = dev.take_hazards().iter().map(|h| h.to_string()).collect();
            let sim_ms = Some(dev.elapsed_ms());
            Ok((output, sim_ms, hazards))
        }
    }
}

/// Executes a parsed command line. Returns the text to print on success.
pub fn execute(cli: &Cli) -> Result<String, (i32, String)> {
    match &cli.command {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Generate {
            n,
            d,
            clusters,
            subspace_dims,
            std_dev,
            noise,
            seed,
            out,
        } => {
            let cfg = datagen::SyntheticConfig {
                n: *n,
                d: *d,
                num_clusters: *clusters,
                subspace_dims: (*subspace_dims).min(*d),
                std_dev: *std_dev,
                value_range: (0.0, 100.0),
                noise_fraction: *noise,
                seed: *seed,
            };
            let g = datagen::synthetic::generate(&cfg);
            datagen::io::write_csv(Path::new(out), &g.data, Some(&g.labels))
                .map_err(|e| (crate::exit::INVALID, e.to_string()))?;
            Ok(format!(
                "wrote {n} x {d} points ({clusters} clusters in {}-d subspaces, {noise} noise) \
                 with ground-truth labels to {out}\n",
                cfg.subspace_dims
            ))
        }
        Command::Cluster {
            input,
            k,
            l,
            algo,
            backend,
            threads,
            device,
            devices,
            seed,
            no_normalize,
            header,
            label_col,
            out,
            a,
            b,
            sanitize,
            telemetry,
            chrome_trace,
        } => {
            let loaded = datagen::io::load_csv(Path::new(input), *header, *label_col)
                .map_err(|e| (crate::exit::INVALID, e.to_string()))?;
            let mut data = loaded.data;
            if !*no_normalize {
                data.minmax_normalize();
            }

            let want_telemetry = telemetry.is_some() || chrome_trace.is_some();
            let mut outcomes = Vec::new();
            let mut all_hazards = Vec::new();
            for k in k.values() {
                let n_devices =
                    std::num::NonZeroUsize::new((*devices).max(1)).expect("max(1) is nonzero");
                let params = Params::new(k, *l)
                    .with_a(*a)
                    .with_b(*b)
                    .with_seed(*seed)
                    .with_devices(n_devices);
                let config = Config::new(params)
                    .with_algo(*algo)
                    .with_backend(*backend)
                    .with_threads(*threads)
                    .with_telemetry(want_telemetry);
                let t0 = std::time::Instant::now();
                let (output, sim_ms, hazards) = run_config(&data, &config, device, *sanitize)?;
                all_hazards.extend(hazards);
                let clustering =
                    output.clusterings.into_iter().next().ok_or_else(|| {
                        (crate::exit::DEVICE, "run produced no clustering".into())
                    })?;
                outcomes.push(RunOutcome {
                    k,
                    clustering,
                    wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                    sim_ms,
                    telemetry: output.telemetry,
                });
            }

            // Write labels of the best (lowest refined cost) run.
            let best = outcomes
                .iter()
                .min_by(|x, y| {
                    x.clustering
                        .refined_cost
                        .total_cmp(&y.clustering.refined_cost)
                })
                .ok_or_else(|| (crate::exit::INVALID, "empty k sweep".into()))?;
            if let Some(out_path) = out {
                report::write_labels(Path::new(out_path), &best.clustering.labels)
                    .map_err(|e| (crate::exit::INVALID, e.to_string()))?;
            }

            let label = format!("{} on {}", algo.name(), backend.name());
            let mut rendered = report::render(
                &data,
                &label,
                &outcomes,
                loaded.labels.as_deref(),
                out.as_deref(),
            );
            if let Some(t) = &best.telemetry {
                rendered.push_str(&report::render_phase_table(t));
            }

            // One multi-run document covers the whole sweep, in k order.
            let reports: Vec<TelemetryReport> = outcomes
                .iter()
                .filter_map(|o| o.telemetry.clone())
                .collect();
            if let Some(path) = telemetry {
                std::fs::write(path, proclus::telemetry::runs_json(&reports))
                    .map_err(|e| (crate::exit::INVALID, e.to_string()))?;
                rendered.push_str(&format!("telemetry written to {path}\n"));
            }
            if let Some(path) = chrome_trace {
                std::fs::write(path, proclus::telemetry::chrome_trace_combined(&reports))
                    .map_err(|e| (crate::exit::INVALID, e.to_string()))?;
                rendered.push_str(&format!("chrome trace written to {path}\n"));
            }

            if *sanitize != SanitizerMode::Off && *backend == Backend::Gpu {
                if all_hazards.is_empty() {
                    rendered.push_str("sanitizer: no hazards detected\n");
                } else {
                    rendered.push_str(&format!(
                        "sanitizer: {} hazard(s) detected\n",
                        all_hazards.len()
                    ));
                    for h in &all_hazards {
                        rendered.push_str(&format!("  {h}\n"));
                    }
                }
            }
            Ok(rendered)
        }
        Command::Serve {
            listen,
            workers,
            queue_capacity,
            max_batch,
        } => serve(listen.as_deref(), *workers, *queue_capacity, *max_batch),
        Command::Stream {
            n,
            d,
            clusters,
            k,
            l,
            a,
            b,
            batch,
            epochs,
            backend,
            devices,
            seed,
            window,
        } => stream(StreamArgs {
            n: *n,
            d: *d,
            clusters: *clusters,
            k: *k,
            l: *l,
            a: *a,
            b: *b,
            batch: *batch,
            epochs: *epochs,
            backend: *backend,
            devices: *devices,
            seed: *seed,
            window: *window,
        }),
    }
}

/// The `proclus stream` knobs, bundled so the driver reads like the
/// command line.
struct StreamArgs {
    n: usize,
    d: usize,
    clusters: usize,
    k: usize,
    l: usize,
    a: usize,
    b: usize,
    batch: usize,
    epochs: usize,
    backend: Backend,
    devices: usize,
    seed: u64,
    window: Option<usize>,
}

/// Drives a [`proclus_stream::StreamingClusterer`] over a synthetic feed:
/// one cold epoch on the initial `n` points, then `epochs` incremental
/// epochs of `batch` appended points each, printing per-epoch work ratios
/// against the cold run.
fn stream(args: StreamArgs) -> Result<String, (i32, String)> {
    use proclus_stream::{StreamBackendSpec, StreamingClusterer};

    let total = args.n + args.batch * args.epochs;
    let cfg = datagen::SyntheticConfig {
        n: total,
        d: args.d,
        num_clusters: args.clusters.max(1),
        subspace_dims: args.l.min(args.d),
        std_dev: 5.0,
        value_range: (0.0, 100.0),
        noise_fraction: 0.0,
        seed: args.seed,
    };
    let feed = datagen::synthetic::generate(&cfg);

    let params = Params::new(args.k, args.l)
        .with_a(args.a)
        .with_b(args.b)
        .with_seed(args.seed);
    let spec = match args.backend {
        // all_cores() honors the PROCLUS_THREADS override, so stream runs
        // can be pinned from the environment without a CLI flag.
        Backend::Cpu => StreamBackendSpec::Cpu {
            exec: proclus::par::Executor::all_cores(),
        },
        Backend::Gpu => StreamBackendSpec::gpu(DeviceConfig::gtx_1660_ti()),
        Backend::Sharded => StreamBackendSpec::Sharded {
            config: DeviceConfig::gtx_1660_ti(),
            devices: args.devices.max(1),
        },
    };
    let mut c =
        StreamingClusterer::new(args.d, params, spec).map_err(|e| (exit_for(&e), e.to_string()))?;
    if let Some(cap) = args.window {
        c.set_window(Some(cap))
            .map_err(|e| (exit_for(&e), e.to_string()))?;
    }

    let rec = &proclus::telemetry::NullRecorder;
    let cancel = proclus::CancelToken::default();
    let mut next_row = 0usize;
    let mut push = |c: &mut StreamingClusterer, count: usize| -> Result<(), (i32, String)> {
        for _ in 0..count {
            if next_row >= feed.data.n() {
                return Err((crate::exit::INVALID, "synthetic feed exhausted".to_string()));
            }
            c.append(feed.data.row(next_row))
                .map_err(|e| (exit_for(&e), e.to_string()))?;
            next_row += 1;
        }
        Ok(())
    };

    let mut out = format!(
        "streaming {} + {} x {} points ({}-d, {} planted clusters) on {}\n\n\
         {:>5}  {:>7}  {:>12}  {:>12}  {:>6}  {:>12}  {:>9}\n",
        args.n,
        args.epochs,
        args.batch,
        args.d,
        args.clusters,
        args.backend.name(),
        "epoch",
        "n",
        "mode",
        "distances",
        "ratio",
        "refined cost",
        "sim ms"
    );
    let mut cold_distances = 0u64;
    for epoch in 0..=args.epochs {
        push(&mut c, if epoch == 0 { args.n } else { args.batch })?;
        let r = c
            .recluster(rec, &cancel)
            .map_err(|e| (exit_for(&e), e.to_string()))?;
        if epoch == 0 {
            cold_distances = r.distances.max(1);
        }
        let sim = r
            .sim_us
            .map(|us| format!("{:.3}", us / 1e3))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:>5}  {:>7}  {:>12}  {:>12}  {:>6.3}  {:>12.4}  {:>9}\n",
            epoch,
            r.n,
            r.mode.as_str(),
            r.distances,
            r.distances as f64 / cold_distances as f64,
            r.refined_cost,
            sim
        ));
    }
    out.push_str(
        "\nratio = full distance computations this epoch / the cold epoch's; \
         incremental epochs re-use cached rows and memoized assignments.\n",
    );
    Ok(out)
}

/// Runs the LDJSON clustering service: one session over stdin/stdout, or
/// (with `--listen`) a thread per TCP connection sharing one [`Server`].
fn serve(
    listen: Option<&str>,
    workers: usize,
    queue_capacity: usize,
    max_batch: usize,
) -> Result<String, (i32, String)> {
    let cfg = proclus_serve::ServeConfig::default()
        .with_workers(workers)
        .with_queue_capacity(queue_capacity)
        .with_max_batch(max_batch);
    let server = proclus_serve::Server::start(cfg)
        .map_err(|e| (crate::exit::DEVICE, format!("serve: {e}")))?;
    match listen {
        None => {
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            proclus_serve::protocol::serve_connection(&server, stdin.lock(), &mut stdout)
                .map_err(|e| (crate::exit::DEVICE, format!("serve: {e}")))?;
            server.shutdown();
            Ok(String::new())
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr).map_err(|e| {
                (
                    crate::exit::DEVICE,
                    format!("serve: cannot bind {addr}: {e}"),
                )
            })?;
            eprintln!("proclus serve: listening on {addr} ({workers} workers)");
            let server = std::sync::Arc::new(server);
            // Connection-handler threads blocked on accept/IO; the compute
            // inside each job still runs on the shared Executor pool.
            // lint:allow(no_raw_scope) -- IO threads, not data-parallel fan-out
            std::thread::scope(|scope| {
                for stream in listener.incoming() {
                    let stream = match stream {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let server = std::sync::Arc::clone(&server);
                    scope.spawn(move || {
                        let reader = std::io::BufReader::new(match stream.try_clone() {
                            Ok(s) => s,
                            Err(_) => return,
                        });
                        let mut writer = stream;
                        let _ =
                            proclus_serve::protocol::serve_connection(&server, reader, &mut writer);
                    });
                }
            });
            Ok(String::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("proclus-cli-{name}-{}.csv", std::process::id()))
    }

    fn cli(args: &[&str]) -> Cli {
        Cli::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn generate_then_cluster_roundtrip() {
        let data_path = tmp("gen");
        let labels_path = tmp("labels");
        let gen = cli(&[
            "generate",
            "--n",
            "500",
            "--d",
            "6",
            "--clusters",
            "3",
            "--subspace-dims",
            "3",
            "--out",
            data_path.to_str().unwrap(),
        ]);
        let msg = execute(&gen).unwrap();
        assert!(msg.contains("500 x 6"));

        let cluster = cli(&[
            "cluster",
            data_path.to_str().unwrap(),
            "--k",
            "3",
            "--l",
            "3",
            "--a",
            "20",
            "--b",
            "4",
            "--label-col",
            "6",
            "--out",
            labels_path.to_str().unwrap(),
        ]);
        let out = execute(&cluster).unwrap();
        assert!(out.contains("k = 3"), "{out}");
        assert!(out.contains("ARI"), "ground-truth metrics expected: {out}");
        let written = std::fs::read_to_string(&labels_path).unwrap();
        assert_eq!(written.lines().count(), 500);
        std::fs::remove_file(data_path).ok();
        std::fs::remove_file(labels_path).ok();
    }

    #[test]
    fn sweep_reports_every_k() {
        let data_path = tmp("sweep");
        execute(&cli(&[
            "generate",
            "--n",
            "400",
            "--d",
            "5",
            "--clusters",
            "3",
            "--subspace-dims",
            "2",
            "--out",
            data_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = execute(&cli(&[
            "cluster",
            data_path.to_str().unwrap(),
            "--k",
            "2..4",
            "--l",
            "2",
            "--a",
            "15",
            "--b",
            "3",
            "--label-col",
            "5",
        ]))
        .unwrap();
        for k in 2..=4 {
            assert!(
                out.contains(&format!("k = {k}")),
                "missing k = {k} in:\n{out}"
            );
        }
        std::fs::remove_file(data_path).ok();
    }

    #[test]
    fn gpu_engine_reports_simulated_time() {
        let data_path = tmp("gpu");
        execute(&cli(&[
            "generate",
            "--n",
            "600",
            "--d",
            "6",
            "--clusters",
            "3",
            "--subspace-dims",
            "3",
            "--out",
            data_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = execute(&cli(&[
            "cluster",
            data_path.to_str().unwrap(),
            "--k",
            "3",
            "--l",
            "3",
            "--a",
            "15",
            "--b",
            "3",
            "--label-col",
            "6",
            "--engine",
            "gpu-fast",
        ]))
        .unwrap();
        assert!(out.contains("simulated"), "{out}");
        std::fs::remove_file(data_path).ok();
    }

    #[test]
    fn gpu_engine_with_sanitizer_reports_clean() {
        let data_path = tmp("san");
        execute(&cli(&[
            "generate",
            "--n",
            "500",
            "--d",
            "5",
            "--clusters",
            "3",
            "--subspace-dims",
            "2",
            "--out",
            data_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = execute(&cli(&[
            "cluster",
            data_path.to_str().unwrap(),
            "--k",
            "3",
            "--l",
            "2",
            "--a",
            "15",
            "--b",
            "3",
            "--label-col",
            "5",
            "--engine",
            "gpu-fast",
            "--sanitize",
            "abort",
        ]))
        .unwrap();
        assert!(out.contains("sanitizer: no hazards detected"), "{out}");
        std::fs::remove_file(data_path).ok();
    }

    #[test]
    fn telemetry_flags_write_schema_valid_files() {
        let data_path = tmp("teldata");
        let tel_path = tmp("teljson").with_extension("json");
        let trace_path = tmp("teltrace").with_extension("json");
        execute(&cli(&[
            "generate",
            "--n",
            "400",
            "--d",
            "5",
            "--clusters",
            "3",
            "--subspace-dims",
            "2",
            "--out",
            data_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = execute(&cli(&[
            "cluster",
            data_path.to_str().unwrap(),
            "--k",
            "2..3",
            "--l",
            "2",
            "--a",
            "15",
            "--b",
            "3",
            "--label-col",
            "5",
            "--telemetry",
            tel_path.to_str().unwrap(),
            "--chrome-trace",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        // Phase-time table is printed for the best run.
        assert!(out.contains("phase"), "{out}");
        assert!(out.contains("assign_points"), "{out}");
        assert!(out.contains("telemetry written to"), "{out}");

        let tel_json = std::fs::read_to_string(&tel_path).unwrap();
        proclus::telemetry::schema::validate_any_str(&tel_json).expect("schema-valid telemetry");
        // One run per swept k.
        assert_eq!(tel_json.matches("\"spans\"").count(), 2, "{tel_json}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        proclus::telemetry::schema::validate_chrome_trace_str(&trace)
            .expect("chrome trace loads as valid JSON");

        std::fs::remove_file(data_path).ok();
        std::fs::remove_file(tel_path).ok();
        std::fs::remove_file(trace_path).ok();
    }

    #[test]
    fn gpu_telemetry_includes_kernel_spans() {
        let data_path = tmp("gputel");
        let tel_path = tmp("gputeljson").with_extension("json");
        execute(&cli(&[
            "generate",
            "--n",
            "400",
            "--d",
            "5",
            "--clusters",
            "3",
            "--subspace-dims",
            "2",
            "--out",
            data_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = execute(&cli(&[
            "cluster",
            data_path.to_str().unwrap(),
            "--k",
            "3",
            "--l",
            "2",
            "--a",
            "15",
            "--b",
            "3",
            "--label-col",
            "5",
            "--engine",
            "gpu-fast",
            "--telemetry",
            tel_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("kernel:"), "{out}");
        let tel_json = std::fs::read_to_string(&tel_path).unwrap();
        assert!(tel_json.contains("kernel:"), "{tel_json}");
        proclus::telemetry::schema::validate_any_str(&tel_json).unwrap();
        std::fs::remove_file(data_path).ok();
        std::fs::remove_file(tel_path).ok();
    }

    #[test]
    fn stream_driver_reports_incremental_epochs() {
        let out = execute(&cli(&[
            "stream",
            "--n",
            "600",
            "--d",
            "5",
            "--clusters",
            "3",
            "--k",
            "3",
            "--l",
            "2",
            "--a",
            "10",
            "--b",
            "3",
            "--batch",
            "6",
            "--epochs",
            "2",
            "--seed",
            "11",
        ]))
        .unwrap();
        assert!(out.contains("full"), "{out}");
        assert!(out.contains("incremental"), "{out}");
        // Epoch 0 is the cold baseline (ratio 1.000); later epochs shrink.
        assert!(out.contains("1.000"), "{out}");
    }

    #[test]
    fn stream_driver_runs_on_the_gpu_backend_with_a_window() {
        let out = execute(&cli(&[
            "stream",
            "--n",
            "400",
            "--d",
            "4",
            "--clusters",
            "3",
            "--k",
            "3",
            "--l",
            "2",
            "--a",
            "10",
            "--b",
            "3",
            "--batch",
            "4",
            "--epochs",
            "1",
            "--backend",
            "gpu",
            "--window",
            "400",
            "--seed",
            "5",
        ]))
        .unwrap();
        // The GPU backend reports simulated time in the sim ms column.
        assert!(out.contains("sim ms"), "{out}");
        assert!(!out.contains("  -\n"), "expected sim times, got:\n{out}");
    }

    #[test]
    fn missing_file_maps_to_invalid_exit() {
        let err = execute(&cli(&["cluster", "/no/such/file.csv", "--k", "3"])).unwrap_err();
        assert_eq!(err.0, crate::exit::INVALID);
    }

    #[test]
    fn invalid_params_map_to_invalid_exit() {
        let data_path = tmp("inv");
        execute(&cli(&[
            "generate",
            "--n",
            "50",
            "--d",
            "4",
            "--clusters",
            "2",
            "--subspace-dims",
            "2",
            "--out",
            data_path.to_str().unwrap(),
        ]))
        .unwrap();
        // l = 1 < 2 is rejected by parameter validation, not a panic.
        let err = execute(&cli(&[
            "cluster",
            data_path.to_str().unwrap(),
            "--k",
            "2",
            "--l",
            "1",
            "--label-col",
            "4",
        ]))
        .unwrap_err();
        assert_eq!(err.0, crate::exit::INVALID, "{}", err.1);
        std::fs::remove_file(data_path).ok();
    }

    #[test]
    fn bad_device_maps_to_device_exit() {
        let data_path = tmp("dev");
        execute(&cli(&[
            "generate",
            "--n",
            "300",
            "--d",
            "5",
            "--clusters",
            "2",
            "--subspace-dims",
            "2",
            "--out",
            data_path.to_str().unwrap(),
        ]))
        .unwrap();
        let err = execute(&cli(&[
            "cluster",
            data_path.to_str().unwrap(),
            "--k",
            "2",
            "--l",
            "2",
            "--a",
            "10",
            "--b",
            "3",
            "--label-col",
            "5",
            "--engine",
            "gpu-fast",
            "--device",
            "voodoo2",
        ]))
        .unwrap_err();
        assert_eq!(err.0, crate::exit::DEVICE);
        std::fs::remove_file(data_path).ok();
    }
}
