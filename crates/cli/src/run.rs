//! Command execution: load → cluster → report.

use std::path::Path;

use gpu_sim::{Device, DeviceConfig, SanitizerMode};
use proclus::{
    fast_proclus, fast_proclus_par, fast_star_proclus, proclus, Clustering, DataMatrix, Params,
};
use proclus_gpu::{gpu_fast_proclus, gpu_proclus};

use crate::args::{Cli, Command, Engine};
use crate::report;

/// One sweep entry's outcome.
pub struct RunOutcome {
    /// `k` used.
    pub k: usize,
    /// The clustering.
    pub clustering: Clustering,
    /// CPU wall-clock in ms.
    pub wall_ms: f64,
    /// Simulated device time in ms (GPU engines only).
    pub sim_ms: Option<f64>,
}

fn device_for(name: &str) -> Result<DeviceConfig, String> {
    match name {
        "gtx1660ti" | "1660ti" => Ok(DeviceConfig::gtx_1660_ti()),
        "rtx3090" | "3090" => Ok(DeviceConfig::rtx_3090()),
        other => Err(format!("unknown device `{other}` (gtx1660ti | rtx3090)")),
    }
}

fn run_engine(
    engine: Engine,
    device: &str,
    data: &DataMatrix,
    params: &Params,
    sanitize: SanitizerMode,
) -> Result<(Clustering, Option<f64>, Vec<String>), String> {
    let run_cpu = |f: &dyn Fn() -> proclus::Result<Clustering>| {
        f().map(|c| (c, None, Vec::new()))
            .map_err(|e| e.to_string())
    };
    match engine {
        Engine::Proclus => run_cpu(&|| proclus(data, params)),
        Engine::Fast => run_cpu(&|| fast_proclus(data, params)),
        Engine::FastStar => run_cpu(&|| fast_star_proclus(data, params)),
        Engine::ParFast => {
            let threads = std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1);
            run_cpu(&|| fast_proclus_par(data, params, threads))
        }
        Engine::GpuProclus | Engine::GpuFast => {
            let mut dev = Device::new(device_for(device)?);
            dev.set_sanitizer(sanitize);
            let result = if engine == Engine::GpuProclus {
                gpu_proclus(&mut dev, data, params)
            } else {
                gpu_fast_proclus(&mut dev, data, params)
            };
            let hazards = dev.take_hazards().iter().map(|h| h.to_string()).collect();
            result
                .map(|c| (c, Some(dev.elapsed_ms()), hazards))
                .map_err(|e| e.to_string())
        }
    }
}

/// Executes a parsed command line. Returns the text to print on success.
pub fn execute(cli: &Cli) -> Result<String, (i32, String)> {
    match &cli.command {
        Command::Help => Ok(crate::args::USAGE.to_string()),
        Command::Generate {
            n,
            d,
            clusters,
            subspace_dims,
            std_dev,
            noise,
            seed,
            out,
        } => {
            let cfg = datagen::SyntheticConfig {
                n: *n,
                d: *d,
                num_clusters: *clusters,
                subspace_dims: (*subspace_dims).min(*d),
                std_dev: *std_dev,
                value_range: (0.0, 100.0),
                noise_fraction: *noise,
                seed: *seed,
            };
            let g = datagen::synthetic::generate(&cfg);
            datagen::io::write_csv(Path::new(out), &g.data, Some(&g.labels))
                .map_err(|e| (crate::exit::INVALID, e.to_string()))?;
            Ok(format!(
                "wrote {n} x {d} points ({clusters} clusters in {}-d subspaces, {noise} noise) \
                 with ground-truth labels to {out}\n",
                cfg.subspace_dims
            ))
        }
        Command::Cluster {
            input,
            k,
            l,
            engine,
            device,
            seed,
            no_normalize,
            header,
            label_col,
            out,
            a,
            b,
            sanitize,
        } => {
            let loaded = datagen::io::load_csv(Path::new(input), *header, *label_col)
                .map_err(|e| (crate::exit::INVALID, e.to_string()))?;
            let mut data = loaded.data;
            if !*no_normalize {
                data.minmax_normalize();
            }

            let mut outcomes = Vec::new();
            let mut all_hazards = Vec::new();
            for k in k.values() {
                let params = Params::new(k, *l).with_a(*a).with_b(*b).with_seed(*seed);
                params
                    .validate(&data)
                    .map_err(|e| (crate::exit::INVALID, e.to_string()))?;
                let t0 = std::time::Instant::now();
                let (clustering, sim_ms, hazards) =
                    run_engine(*engine, device, &data, &params, *sanitize)
                        .map_err(|e| (crate::exit::DEVICE, e))?;
                all_hazards.extend(hazards);
                outcomes.push(RunOutcome {
                    k,
                    clustering,
                    wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                    sim_ms,
                });
            }

            // Write labels of the best (lowest refined cost) run.
            let best = outcomes
                .iter()
                .min_by(|x, y| {
                    x.clustering
                        .refined_cost
                        .total_cmp(&y.clustering.refined_cost)
                })
                .expect("at least one k");
            if let Some(out_path) = out {
                report::write_labels(Path::new(out_path), &best.clustering.labels)
                    .map_err(|e| (crate::exit::INVALID, e.to_string()))?;
            }

            let mut rendered = report::render(
                &data,
                *engine,
                &outcomes,
                loaded.labels.as_deref(),
                out.as_deref(),
            );
            if *sanitize != SanitizerMode::Off && engine.is_gpu() {
                if all_hazards.is_empty() {
                    rendered.push_str("sanitizer: no hazards detected\n");
                } else {
                    rendered.push_str(&format!(
                        "sanitizer: {} hazard(s) detected\n",
                        all_hazards.len()
                    ));
                    for h in &all_hazards {
                        rendered.push_str(&format!("  {h}\n"));
                    }
                }
            }
            Ok(rendered)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Cli;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("proclus-cli-{name}-{}.csv", std::process::id()))
    }

    fn cli(args: &[&str]) -> Cli {
        Cli::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn generate_then_cluster_roundtrip() {
        let data_path = tmp("gen");
        let labels_path = tmp("labels");
        let gen = cli(&[
            "generate",
            "--n",
            "500",
            "--d",
            "6",
            "--clusters",
            "3",
            "--subspace-dims",
            "3",
            "--out",
            data_path.to_str().unwrap(),
        ]);
        let msg = execute(&gen).unwrap();
        assert!(msg.contains("500 x 6"));

        let cluster = cli(&[
            "cluster",
            data_path.to_str().unwrap(),
            "--k",
            "3",
            "--l",
            "3",
            "--a",
            "20",
            "--b",
            "4",
            "--label-col",
            "6",
            "--out",
            labels_path.to_str().unwrap(),
        ]);
        let out = execute(&cluster).unwrap();
        assert!(out.contains("k = 3"), "{out}");
        assert!(out.contains("ARI"), "ground-truth metrics expected: {out}");
        let written = std::fs::read_to_string(&labels_path).unwrap();
        assert_eq!(written.lines().count(), 500);
        std::fs::remove_file(data_path).ok();
        std::fs::remove_file(labels_path).ok();
    }

    #[test]
    fn sweep_reports_every_k() {
        let data_path = tmp("sweep");
        execute(&cli(&[
            "generate",
            "--n",
            "400",
            "--d",
            "5",
            "--clusters",
            "3",
            "--subspace-dims",
            "2",
            "--out",
            data_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = execute(&cli(&[
            "cluster",
            data_path.to_str().unwrap(),
            "--k",
            "2..4",
            "--l",
            "2",
            "--a",
            "15",
            "--b",
            "3",
            "--label-col",
            "5",
        ]))
        .unwrap();
        for k in 2..=4 {
            assert!(
                out.contains(&format!("k = {k}")),
                "missing k = {k} in:\n{out}"
            );
        }
        std::fs::remove_file(data_path).ok();
    }

    #[test]
    fn gpu_engine_reports_simulated_time() {
        let data_path = tmp("gpu");
        execute(&cli(&[
            "generate",
            "--n",
            "600",
            "--d",
            "6",
            "--clusters",
            "3",
            "--subspace-dims",
            "3",
            "--out",
            data_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = execute(&cli(&[
            "cluster",
            data_path.to_str().unwrap(),
            "--k",
            "3",
            "--l",
            "3",
            "--a",
            "15",
            "--b",
            "3",
            "--label-col",
            "6",
            "--engine",
            "gpu-fast",
        ]))
        .unwrap();
        assert!(out.contains("simulated"), "{out}");
        std::fs::remove_file(data_path).ok();
    }

    #[test]
    fn gpu_engine_with_sanitizer_reports_clean() {
        let data_path = tmp("san");
        execute(&cli(&[
            "generate",
            "--n",
            "500",
            "--d",
            "5",
            "--clusters",
            "3",
            "--subspace-dims",
            "2",
            "--out",
            data_path.to_str().unwrap(),
        ]))
        .unwrap();
        let out = execute(&cli(&[
            "cluster",
            data_path.to_str().unwrap(),
            "--k",
            "3",
            "--l",
            "2",
            "--a",
            "15",
            "--b",
            "3",
            "--label-col",
            "5",
            "--engine",
            "gpu-fast",
            "--sanitize",
            "abort",
        ]))
        .unwrap();
        assert!(out.contains("sanitizer: no hazards detected"), "{out}");
        std::fs::remove_file(data_path).ok();
    }

    #[test]
    fn missing_file_maps_to_invalid_exit() {
        let err = execute(&cli(&["cluster", "/no/such/file.csv", "--k", "3"])).unwrap_err();
        assert_eq!(err.0, crate::exit::INVALID);
    }

    #[test]
    fn bad_device_maps_to_device_exit() {
        let data_path = tmp("dev");
        execute(&cli(&[
            "generate",
            "--n",
            "300",
            "--d",
            "5",
            "--clusters",
            "2",
            "--subspace-dims",
            "2",
            "--out",
            data_path.to_str().unwrap(),
        ]))
        .unwrap();
        let err = execute(&cli(&[
            "cluster",
            data_path.to_str().unwrap(),
            "--k",
            "2",
            "--l",
            "2",
            "--a",
            "10",
            "--b",
            "3",
            "--label-col",
            "5",
            "--engine",
            "gpu-fast",
            "--device",
            "voodoo2",
        ]))
        .unwrap_err();
        assert_eq!(err.0, crate::exit::DEVICE);
        std::fs::remove_file(data_path).ok();
    }
}
