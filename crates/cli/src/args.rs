//! Hand-rolled argument parsing (three subcommands, a dozen flags — no
//! dependency needed).
//!
//! Algorithm selection is the unified `--algo` / `--backend` / `--threads`
//! triple matching [`proclus::Config`]; the historical `--engine` spellings
//! remain as aliases that expand to the same triple.

use gpu_sim::SanitizerMode;
use proclus::{Algo, Backend};

fn parse_sanitize(s: &str) -> Result<SanitizerMode, String> {
    match s {
        "off" => Ok(SanitizerMode::Off),
        "report" => Ok(SanitizerMode::Report),
        "abort" => Ok(SanitizerMode::Abort),
        other => Err(format!(
            "unknown sanitizer mode `{other}` (off | report | abort)"
        )),
    }
}

fn all_cores() -> usize {
    std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
}

/// Expands a legacy `--engine` spelling into the `(algo, backend, threads)`
/// triple the unified API speaks.
pub fn engine_alias(s: &str) -> Result<(Algo, Backend, usize), String> {
    match s {
        "proclus" => Ok((Algo::Baseline, Backend::Cpu, 0)),
        "fast" => Ok((Algo::Fast, Backend::Cpu, 0)),
        "fast-star" | "fast*" => Ok((Algo::FastStar, Backend::Cpu, 0)),
        "par-fast" | "mc-fast" => Ok((Algo::Fast, Backend::Cpu, all_cores())),
        "gpu" | "gpu-proclus" => Ok((Algo::Baseline, Backend::Gpu, 0)),
        "gpu-fast" => Ok((Algo::Fast, Backend::Gpu, 0)),
        "gpu-fast-star" => Ok((Algo::FastStar, Backend::Gpu, 0)),
        other => Err(format!(
            "unknown engine `{other}` (proclus | fast | fast-star | par-fast | \
             gpu-proclus | gpu-fast | gpu-fast-star)"
        )),
    }
}

/// A `k` specification: a single value or an inclusive sweep `lo..hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KSpec {
    /// One value of `k`.
    Single(usize),
    /// Inclusive range `lo..hi`.
    Range(usize, usize),
}

impl KSpec {
    fn parse(s: &str) -> Result<Self, String> {
        if let Some((lo, hi)) = s.split_once("..") {
            let lo: usize = lo.parse().map_err(|_| format!("bad k range `{s}`"))?;
            let hi: usize = hi.parse().map_err(|_| format!("bad k range `{s}`"))?;
            if lo > hi || lo < 2 {
                return Err(format!("bad k range `{s}` (need 2 <= lo <= hi)"));
            }
            Ok(KSpec::Range(lo, hi))
        } else {
            let k: usize = s.parse().map_err(|_| format!("bad k `{s}`"))?;
            Ok(KSpec::Single(k))
        }
    }

    /// All `k` values covered.
    pub fn values(self) -> Vec<usize> {
        match self {
            KSpec::Single(k) => vec![k],
            KSpec::Range(lo, hi) => (lo..=hi).collect(),
        }
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// What to do.
    pub command: Command,
}

/// The subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Cluster (or sweep `k` over) a CSV file.
    Cluster {
        /// Input CSV path.
        input: String,
        /// `k` value(s).
        k: KSpec,
        /// Average subspace dimensionality.
        l: usize,
        /// Algorithm variant.
        algo: Algo,
        /// Execution backend.
        backend: Backend,
        /// CPU worker threads (0/1 = sequential).
        threads: usize,
        /// Device preset (`gtx1660ti` | `rtx3090`) for the GPU backend.
        device: String,
        /// Simulated device count for the sharded backend.
        devices: usize,
        /// Seed.
        seed: u64,
        /// Skip min–max normalization.
        no_normalize: bool,
        /// Input has a header row.
        header: bool,
        /// Label column to ignore (0-based), if any.
        label_col: Option<usize>,
        /// Where to write per-point labels (CSV), if anywhere.
        out: Option<String>,
        /// Sample constant A.
        a: usize,
        /// Medoid constant B.
        b: usize,
        /// Kernel sanitizer mode for the GPU backend.
        sanitize: SanitizerMode,
        /// Where to write the telemetry JSON report, if anywhere.
        telemetry: Option<String>,
        /// Where to write the chrome-trace JSON, if anywhere.
        chrome_trace: Option<String>,
    },
    /// Generate a synthetic dataset CSV.
    Generate {
        /// Points.
        n: usize,
        /// Dimensions.
        d: usize,
        /// Planted clusters.
        clusters: usize,
        /// Subspace dims per cluster.
        subspace_dims: usize,
        /// Gaussian σ.
        std_dev: f32,
        /// Noise fraction.
        noise: f64,
        /// Seed.
        seed: u64,
        /// Output CSV path (labels appended as last column).
        out: String,
    },
    /// Run the LDJSON clustering service (stdin/stdout, or TCP with
    /// `--listen`).
    Serve {
        /// TCP address to listen on (`host:port`); `None` serves one
        /// session over stdin/stdout.
        listen: Option<String>,
        /// Worker threads.
        workers: usize,
        /// Bounded queue capacity (admission control).
        queue_capacity: usize,
        /// Maximum jobs coalesced into one grid run.
        max_batch: usize,
    },
    /// Drive a live streaming clusterer over a synthetic feed: seed it
    /// with `n` points, then append `batch` points per epoch (optionally
    /// under a sliding window) and re-cluster incrementally, printing the
    /// per-epoch work ratios against a from-scratch run.
    Stream {
        /// Initial points.
        n: usize,
        /// Dimensions.
        d: usize,
        /// Planted clusters in the synthetic feed.
        clusters: usize,
        /// Number of clusters to find.
        k: usize,
        /// Average subspace dims.
        l: usize,
        /// Sample constant A.
        a: usize,
        /// Medoid constant B.
        b: usize,
        /// Points appended per epoch.
        batch: usize,
        /// Incremental epochs to run after the initial one.
        epochs: usize,
        /// Execution backend.
        backend: Backend,
        /// Simulated device count for the sharded backend.
        devices: usize,
        /// Seed.
        seed: u64,
        /// Sliding-window capacity, if any.
        window: Option<usize>,
    },
    /// Print help.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
proclus — projected clustering (GPU-FAST-PROCLUS reproduction)

USAGE:
  proclus cluster <data.csv> --k <K | LO..HI> [--l L] [flags]
  proclus generate --out <file.csv> [--n N] [--d D] [--clusters C] [flags]
  proclus serve [--listen HOST:PORT] [--workers N] [--queue N] [--max-batch N]
  proclus stream [--n N] [--batch B] [--epochs E] [--backend B] [flags]
  proclus help

cluster flags:
  --k K | LO..HI     number of clusters, or an inclusive sweep   (required)
  --l L              average subspace dims                        [5]
  --algo A           baseline|fast|fast-star                      [fast]
  --backend B        cpu|gpu|sharded                              [cpu]
  --threads T        CPU worker threads (0/1 = sequential)        [0]
  --engine E         alias expanding to --algo/--backend/--threads:
                     proclus|fast|fast-star|par-fast|gpu-proclus|gpu-fast|gpu-fast-star
  --device D         gtx1660ti|rtx3090 (GPU backend)              [gtx1660ti]
  --devices N        simulated devices (sharded backend)          [1]
  --seed S           RNG seed                                     [42]
  --a A  --b B       PROCLUS sampling constants                   [100, 10]
  --header           input has a header row
  --label-col I      ignore column I (0-based) as ground-truth labels
  --no-normalize     skip min-max normalization
  --out FILE         write per-point labels as CSV
  --telemetry FILE   write the telemetry JSON report (spans + counters)
  --chrome-trace FILE  write a chrome-trace JSON (about:tracing / Perfetto)
  --sanitize M       kernel sanitizer: off|report|abort (GPU backend)  [off]

generate flags:
  --n N --d D --clusters C --subspace-dims S --std-dev V --noise F --seed S
  --out FILE         output path (required)

serve flags (LDJSON: one JSON request per line; jobs on the same dataset
differing only in k/l are coalesced into one shared grid run):
  --listen ADDR      serve TCP sessions on ADDR instead of stdin/stdout
  --workers N        worker threads                               [2]
  --queue N          bounded queue capacity (backpressure)        [64]
  --max-batch N      max jobs coalesced into one grid run         [16]

stream flags (synthetic incremental driver: seeds a live dataset, then
appends --batch points per epoch and re-clusters incrementally,
reporting the per-epoch work ratio vs a from-scratch run):
  --n N              initial points                               [2000]
  --d D              dimensions                                   [8]
  --clusters C       planted clusters in the feed                 [6]
  --k K  --l L       clusters to find / avg subspace dims         [6, 3]
  --a A  --b B       PROCLUS sampling constants                   [20, 4]
  --batch B          points appended per epoch                    [20]
  --epochs E         incremental epochs after the initial one     [5]
  --backend B        cpu|gpu|sharded                              [cpu]
  --devices N        simulated devices (sharded backend)          [2]
  --seed S           RNG seed                                     [42]
  --window W         sliding-window capacity (oldest evicted)
";

fn take_value(
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    flag: &str,
) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_num<T: std::str::FromStr>(v: String, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("{flag}: bad value `{v}`"))
}

impl Cli {
    /// Parses an argument list (without the program name).
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut args = argv.into_iter().peekable();
        let command = match args.next().as_deref() {
            None | Some("help") | Some("--help") | Some("-h") => {
                return Ok(Cli {
                    command: Command::Help,
                })
            }
            Some("cluster") => {
                let mut input: Option<String> = None;
                let mut k: Option<KSpec> = None;
                let mut l = 5usize;
                let mut algo = Algo::default();
                let mut backend = Backend::default();
                let mut threads = 0usize;
                let mut device = "gtx1660ti".to_string();
                let mut devices = 1usize;
                let mut seed = 42u64;
                let mut no_normalize = false;
                let mut header = false;
                let mut label_col = None;
                let mut out = None;
                let mut a = 100usize;
                let mut b = 10usize;
                let mut sanitize = SanitizerMode::Off;
                let mut telemetry = None;
                let mut chrome_trace = None;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "--k" => k = Some(KSpec::parse(&take_value(&mut args, "--k")?)?),
                        "--l" => l = parse_num(take_value(&mut args, "--l")?, "--l")?,
                        "--algo" => {
                            let v = take_value(&mut args, "--algo")?;
                            algo = Algo::parse(&v).ok_or_else(|| {
                                format!("unknown algo `{v}` (baseline | fast | fast-star)")
                            })?;
                        }
                        "--backend" => {
                            let v = take_value(&mut args, "--backend")?;
                            backend = Backend::parse(&v).ok_or_else(|| {
                                format!("unknown backend `{v}` (cpu | gpu | sharded)")
                            })?;
                        }
                        "--threads" => {
                            threads = parse_num(take_value(&mut args, "--threads")?, "--threads")?;
                        }
                        "--engine" => {
                            (algo, backend, threads) =
                                engine_alias(&take_value(&mut args, "--engine")?)?;
                        }
                        "--telemetry" => telemetry = Some(take_value(&mut args, "--telemetry")?),
                        "--chrome-trace" => {
                            chrome_trace = Some(take_value(&mut args, "--chrome-trace")?);
                        }
                        "--device" => device = take_value(&mut args, "--device")?,
                        "--devices" => {
                            devices = parse_num(take_value(&mut args, "--devices")?, "--devices")?;
                            if devices == 0 {
                                return Err("--devices must be at least 1".to_string());
                            }
                        }
                        "--seed" => seed = parse_num(take_value(&mut args, "--seed")?, "--seed")?,
                        "--a" => a = parse_num(take_value(&mut args, "--a")?, "--a")?,
                        "--b" => b = parse_num(take_value(&mut args, "--b")?, "--b")?,
                        "--no-normalize" => no_normalize = true,
                        "--header" => header = true,
                        "--label-col" => {
                            label_col = Some(parse_num(
                                take_value(&mut args, "--label-col")?,
                                "--label-col",
                            )?);
                        }
                        "--out" => out = Some(take_value(&mut args, "--out")?),
                        "--sanitize" => {
                            sanitize = parse_sanitize(&take_value(&mut args, "--sanitize")?)?;
                        }
                        other if !other.starts_with("--") && input.is_none() => {
                            input = Some(other.to_string());
                        }
                        other => return Err(format!("unexpected argument `{other}`")),
                    }
                }
                Command::Cluster {
                    input: input.ok_or("cluster: missing input CSV path")?,
                    k: k.ok_or("cluster: --k is required")?,
                    l,
                    algo,
                    backend,
                    threads,
                    device,
                    devices,
                    seed,
                    no_normalize,
                    header,
                    label_col,
                    out,
                    a,
                    b,
                    sanitize,
                    telemetry,
                    chrome_trace,
                }
            }
            Some("generate") => {
                let mut n = 10_000usize;
                let mut d = 15usize;
                let mut clusters = 10usize;
                let mut subspace_dims = 5usize;
                let mut std_dev = 5.0f32;
                let mut noise = 0.0f64;
                let mut seed = 42u64;
                let mut out: Option<String> = None;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "--n" => n = parse_num(take_value(&mut args, "--n")?, "--n")?,
                        "--d" => d = parse_num(take_value(&mut args, "--d")?, "--d")?,
                        "--clusters" => {
                            clusters =
                                parse_num(take_value(&mut args, "--clusters")?, "--clusters")?;
                        }
                        "--subspace-dims" => {
                            subspace_dims = parse_num(
                                take_value(&mut args, "--subspace-dims")?,
                                "--subspace-dims",
                            )?;
                        }
                        "--std-dev" => {
                            std_dev = parse_num(take_value(&mut args, "--std-dev")?, "--std-dev")?;
                        }
                        "--noise" => {
                            noise = parse_num(take_value(&mut args, "--noise")?, "--noise")?;
                        }
                        "--seed" => seed = parse_num(take_value(&mut args, "--seed")?, "--seed")?,
                        "--out" => out = Some(take_value(&mut args, "--out")?),
                        other => return Err(format!("unexpected argument `{other}`")),
                    }
                }
                Command::Generate {
                    n,
                    d,
                    clusters,
                    subspace_dims,
                    std_dev,
                    noise,
                    seed,
                    out: out.ok_or("generate: --out is required")?,
                }
            }
            Some("serve") => {
                let mut listen: Option<String> = None;
                let mut workers = 2usize;
                let mut queue_capacity = 64usize;
                let mut max_batch = 16usize;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "--listen" => listen = Some(take_value(&mut args, "--listen")?),
                        "--workers" => {
                            workers = parse_num(take_value(&mut args, "--workers")?, "--workers")?;
                        }
                        "--queue" => {
                            queue_capacity =
                                parse_num(take_value(&mut args, "--queue")?, "--queue")?;
                        }
                        "--max-batch" => {
                            max_batch =
                                parse_num(take_value(&mut args, "--max-batch")?, "--max-batch")?;
                        }
                        other => return Err(format!("unexpected argument `{other}`")),
                    }
                }
                Command::Serve {
                    listen,
                    workers,
                    queue_capacity,
                    max_batch,
                }
            }
            Some("stream") => {
                let mut n = 2_000usize;
                let mut d = 8usize;
                let mut clusters = 6usize;
                let mut k = 6usize;
                let mut l = 3usize;
                let mut a = 20usize;
                let mut b = 4usize;
                let mut batch = 20usize;
                let mut epochs = 5usize;
                let mut backend = Backend::default();
                let mut devices = 2usize;
                let mut seed = 42u64;
                let mut window: Option<usize> = None;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "--n" => n = parse_num(take_value(&mut args, "--n")?, "--n")?,
                        "--d" => d = parse_num(take_value(&mut args, "--d")?, "--d")?,
                        "--clusters" => {
                            clusters =
                                parse_num(take_value(&mut args, "--clusters")?, "--clusters")?;
                        }
                        "--k" => k = parse_num(take_value(&mut args, "--k")?, "--k")?,
                        "--l" => l = parse_num(take_value(&mut args, "--l")?, "--l")?,
                        "--a" => a = parse_num(take_value(&mut args, "--a")?, "--a")?,
                        "--b" => b = parse_num(take_value(&mut args, "--b")?, "--b")?,
                        "--batch" => {
                            batch = parse_num(take_value(&mut args, "--batch")?, "--batch")?;
                        }
                        "--epochs" => {
                            epochs = parse_num(take_value(&mut args, "--epochs")?, "--epochs")?;
                        }
                        "--backend" => {
                            let v = take_value(&mut args, "--backend")?;
                            backend = Backend::parse(&v).ok_or_else(|| {
                                format!("unknown backend `{v}` (cpu | gpu | sharded)")
                            })?;
                        }
                        "--devices" => {
                            devices = parse_num(take_value(&mut args, "--devices")?, "--devices")?;
                            if devices == 0 {
                                return Err("--devices must be at least 1".to_string());
                            }
                        }
                        "--seed" => seed = parse_num(take_value(&mut args, "--seed")?, "--seed")?,
                        "--window" => {
                            window =
                                Some(parse_num(take_value(&mut args, "--window")?, "--window")?);
                        }
                        other => return Err(format!("unexpected argument `{other}`")),
                    }
                }
                Command::Stream {
                    n,
                    d,
                    clusters,
                    k,
                    l,
                    a,
                    b,
                    batch,
                    epochs,
                    backend,
                    devices,
                    seed,
                    window,
                }
            }
            Some(other) => return Err(format!("unknown command `{other}` (try `proclus help`)")),
        };
        Ok(Cli { command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn serve_defaults() {
        let cli = parse(&["serve"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                listen: None,
                workers: 2,
                queue_capacity: 64,
                max_batch: 16,
            }
        );
    }

    #[test]
    fn serve_full_flags() {
        let cli = parse(&[
            "serve",
            "--listen",
            "127.0.0.1:7878",
            "--workers",
            "4",
            "--queue",
            "128",
            "--max-batch",
            "8",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                listen: Some("127.0.0.1:7878".to_string()),
                workers: 4,
                queue_capacity: 128,
                max_batch: 8,
            }
        );
    }

    #[test]
    fn serve_rejects_unknown_flag() {
        assert!(parse(&["serve", "--bogus"]).is_err());
        assert!(parse(&["serve", "--workers", "x"]).is_err());
    }

    #[test]
    fn cluster_minimal() {
        let cli = parse(&["cluster", "data.csv", "--k", "5"]).unwrap();
        match cli.command {
            Command::Cluster {
                input,
                k,
                l,
                algo,
                backend,
                threads,
                telemetry,
                chrome_trace,
                ..
            } => {
                assert_eq!(input, "data.csv");
                assert_eq!(k, KSpec::Single(5));
                assert_eq!(l, 5);
                assert_eq!(algo, Algo::Fast);
                assert_eq!(backend, Backend::Cpu);
                assert_eq!(threads, 0);
                assert!(telemetry.is_none() && chrome_trace.is_none());
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn cluster_sharded_backend_and_devices() {
        let cli = parse(&[
            "cluster",
            "x.csv",
            "--k",
            "3",
            "--backend",
            "sharded",
            "--devices",
            "4",
        ])
        .unwrap();
        match cli.command {
            Command::Cluster {
                backend, devices, ..
            } => {
                assert_eq!(backend, Backend::Sharded);
                assert_eq!(devices, 4);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse(&["cluster", "x.csv", "--k", "3", "--devices", "0"])
            .unwrap_err()
            .contains("--devices"));
    }

    #[test]
    fn cluster_full_flags() {
        let cli = parse(&[
            "cluster",
            "x.csv",
            "--k",
            "4..8",
            "--l",
            "3",
            "--algo",
            "baseline",
            "--backend",
            "gpu",
            "--device",
            "rtx3090",
            "--seed",
            "9",
            "--header",
            "--label-col",
            "0",
            "--out",
            "labels.csv",
            "--telemetry",
            "tel.json",
            "--chrome-trace",
            "trace.json",
            "--a",
            "50",
            "--b",
            "5",
            "--no-normalize",
        ])
        .unwrap();
        match cli.command {
            Command::Cluster {
                k,
                algo,
                backend,
                device,
                seed,
                header,
                label_col,
                out,
                a,
                b,
                no_normalize,
                telemetry,
                chrome_trace,
                ..
            } => {
                assert_eq!(k.values(), vec![4, 5, 6, 7, 8]);
                assert_eq!(algo, Algo::Baseline);
                assert_eq!(backend, Backend::Gpu);
                assert_eq!(device, "rtx3090");
                assert_eq!(seed, 9);
                assert!(header && no_normalize);
                assert_eq!(label_col, Some(0));
                assert_eq!(out.as_deref(), Some("labels.csv"));
                assert_eq!(telemetry.as_deref(), Some("tel.json"));
                assert_eq!(chrome_trace.as_deref(), Some("trace.json"));
                assert_eq!((a, b), (50, 5));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn engine_aliases_expand_to_the_unified_triple() {
        for (spelling, algo, backend) in [
            ("proclus", Algo::Baseline, Backend::Cpu),
            ("fast", Algo::Fast, Backend::Cpu),
            ("fast-star", Algo::FastStar, Backend::Cpu),
            ("gpu-proclus", Algo::Baseline, Backend::Gpu),
            ("gpu-fast", Algo::Fast, Backend::Gpu),
            ("gpu-fast-star", Algo::FastStar, Backend::Gpu),
        ] {
            let cli = parse(&["cluster", "d.csv", "--k", "3", "--engine", spelling]).unwrap();
            match cli.command {
                Command::Cluster {
                    algo: got_a,
                    backend: got_b,
                    ..
                } => {
                    assert_eq!(got_a, algo, "{spelling}");
                    assert_eq!(got_b, backend, "{spelling}");
                }
                _ => panic!("wrong command"),
            }
        }
        // par-fast turns on all cores.
        match parse(&["cluster", "d.csv", "--k", "3", "--engine", "par-fast"])
            .unwrap()
            .command
        {
            Command::Cluster { algo, threads, .. } => {
                assert_eq!(algo, Algo::Fast);
                assert!(threads >= 1);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn bad_algo_and_backend_are_errors() {
        assert!(parse(&["cluster", "d.csv", "--k", "3", "--algo", "slow"])
            .unwrap_err()
            .contains("slow"));
        assert!(parse(&["cluster", "d.csv", "--k", "3", "--backend", "tpu"])
            .unwrap_err()
            .contains("tpu"));
    }

    #[test]
    fn missing_k_is_an_error() {
        assert!(parse(&["cluster", "data.csv"]).unwrap_err().contains("--k"));
    }

    #[test]
    fn sanitize_flag_parses_all_modes() {
        for (arg, want) in [
            ("off", SanitizerMode::Off),
            ("report", SanitizerMode::Report),
            ("abort", SanitizerMode::Abort),
        ] {
            let cli = parse(&["cluster", "d.csv", "--k", "3", "--sanitize", arg]).unwrap();
            match cli.command {
                Command::Cluster { sanitize, .. } => assert_eq!(sanitize, want, "{arg}"),
                _ => panic!("wrong command"),
            }
        }
        // Defaults to off; rejects junk.
        match parse(&["cluster", "d.csv", "--k", "3"]).unwrap().command {
            Command::Cluster { sanitize, .. } => assert_eq!(sanitize, SanitizerMode::Off),
            _ => panic!("wrong command"),
        }
        let e = parse(&["cluster", "d.csv", "--k", "3", "--sanitize", "strict"]).unwrap_err();
        assert!(e.contains("strict"));
    }

    #[test]
    fn bad_engine_is_an_error() {
        let e = parse(&["cluster", "d.csv", "--k", "3", "--engine", "warp9"]).unwrap_err();
        assert!(e.contains("warp9"));
    }

    #[test]
    fn bad_k_range_is_an_error() {
        assert!(parse(&["cluster", "d.csv", "--k", "9..3"]).is_err());
        assert!(parse(&["cluster", "d.csv", "--k", "1..3"]).is_err());
        assert!(parse(&["cluster", "d.csv", "--k", "abc"]).is_err());
    }

    #[test]
    fn generate_requires_out() {
        assert!(parse(&["generate", "--n", "100"])
            .unwrap_err()
            .contains("--out"));
        let cli = parse(&["generate", "--out", "x.csv", "--clusters", "3"]).unwrap();
        match cli.command {
            Command::Generate { clusters, out, .. } => {
                assert_eq!(clusters, 3);
                assert_eq!(out, "x.csv");
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn stream_defaults() {
        let cli = parse(&["stream"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Stream {
                n: 2000,
                d: 8,
                clusters: 6,
                k: 6,
                l: 3,
                a: 20,
                b: 4,
                batch: 20,
                epochs: 5,
                backend: Backend::Cpu,
                devices: 2,
                seed: 42,
                window: None,
            }
        );
    }

    #[test]
    fn stream_full_flags() {
        let cli = parse(&[
            "stream",
            "--n",
            "500",
            "--d",
            "4",
            "--clusters",
            "3",
            "--k",
            "3",
            "--l",
            "2",
            "--a",
            "10",
            "--b",
            "3",
            "--batch",
            "5",
            "--epochs",
            "2",
            "--backend",
            "sharded",
            "--devices",
            "4",
            "--seed",
            "7",
            "--window",
            "400",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Stream {
                n: 500,
                d: 4,
                clusters: 3,
                k: 3,
                l: 2,
                a: 10,
                b: 3,
                batch: 5,
                epochs: 2,
                backend: Backend::Sharded,
                devices: 4,
                seed: 7,
                window: Some(400),
            }
        );
    }

    #[test]
    fn stream_rejects_bad_flags() {
        assert!(parse(&["stream", "--bogus"]).is_err());
        assert!(parse(&["stream", "--backend", "tpu"])
            .unwrap_err()
            .contains("tpu"));
        assert!(parse(&["stream", "--devices", "0"])
            .unwrap_err()
            .contains("--devices"));
    }

    #[test]
    fn help_variants() {
        for args in [&[][..], &["help"][..], &["--help"][..]] {
            assert_eq!(parse(args).unwrap().command, Command::Help);
        }
    }

    #[test]
    fn bad_engine_alias_is_an_error() {
        assert!(engine_alias("warp-drive")
            .unwrap_err()
            .contains("warp-drive"));
        assert!(parse(&["cluster", "d.csv", "--k", "3", "--engine", "warp-drive"]).is_err());
    }
}
