//! # proclus-cli — projected clustering from the command line
//!
//! Library backing the `proclus` binary: argument parsing, engine
//! dispatch, and report formatting live here so they are unit-testable;
//! `main.rs` only wires stdin/stdout/exit codes.
//!
//! ```text
//! proclus cluster data.csv --k 10 --l 5 --algo fast --out labels.csv
//! proclus cluster data.csv --k 10 --l 5 --algo fast --backend gpu --device rtx3090
//! proclus cluster data.csv --k 4..12 --l 3 --telemetry tel.json --chrome-trace trace.json
//! proclus generate --n 10000 --d 15 --clusters 10 --out synth.csv
//! ```
//!
//! The historical `--engine` spellings (`fast`, `gpu-fast`, …) are kept as
//! aliases that expand to `--algo`/`--backend`/`--threads`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod report;
pub mod run;

pub use args::{engine_alias, Cli, Command};
pub use run::execute;

/// CLI process exit codes.
pub mod exit {
    /// Everything worked.
    pub const OK: i32 = 0;
    /// Bad usage / bad flags.
    pub const USAGE: i32 = 2;
    /// Data or parameter validation failed.
    pub const INVALID: i32 = 3;
    /// Device error (e.g. out of memory on the simulated GPU).
    pub const DEVICE: i32 = 4;
    /// The run was cancelled (caller cancellation or deadline exceeded).
    pub const CANCELLED: i32 = 5;
}
