//! The `proclus` binary: parse, execute, print, exit.

fn main() {
    let cli = match proclus_cli::Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", proclus_cli::args::USAGE);
            std::process::exit(proclus_cli::exit::USAGE);
        }
    };
    match proclus_cli::execute(&cli) {
        Ok(output) => print!("{output}"),
        Err((code, msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(code);
        }
    }
}
