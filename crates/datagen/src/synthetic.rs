//! The synthetic subspace-cluster generator.
//!
//! Follows the generator of Beer et al. ("A Generator for Subspace
//! Clusters", LWDA 2019, the paper's \[6\]) with the GPU-INSCY modification
//! (\[18\]) that clusters may live in arbitrary axis-parallel subspaces:
//! each cluster draws a random dimension subset and a random center; member
//! points are Gaussian around the center inside the subspace and uniform
//! noise outside it. Optionally a fraction of points is pure uniform noise.

use proclus::{DataMatrix, ProclusRng};

/// Configuration of the generator. Defaults are the paper's (§5):
/// 64,000 points, 15 dimensions, 10 clusters in 5-d subspaces, σ = 5.0,
/// values in `[0, 100]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Number of points.
    pub n: usize,
    /// Number of dimensions.
    pub d: usize,
    /// Number of planted clusters.
    pub num_clusters: usize,
    /// Dimensionality of each cluster's subspace.
    pub subspace_dims: usize,
    /// Gaussian standard deviation inside the subspace (same unit as the
    /// value range).
    pub std_dev: f32,
    /// Value range `[min, max)` of every dimension.
    pub value_range: (f32, f32),
    /// Fraction of points generated as uniform noise (label `-1`).
    pub noise_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            n: 64_000,
            d: 15,
            num_clusters: 10,
            subspace_dims: 5,
            std_dev: 5.0,
            value_range: (0.0, 100.0),
            noise_fraction: 0.0,
            seed: 0xDA7A,
        }
    }
}

impl SyntheticConfig {
    /// Convenience constructor for the most common sweep axes.
    pub fn new(n: usize, d: usize) -> Self {
        Self {
            n,
            d,
            subspace_dims: Self::default().subspace_dims.min(d),
            ..Self::default()
        }
    }

    /// Sets the number of planted clusters.
    pub fn with_clusters(mut self, c: usize) -> Self {
        self.num_clusters = c;
        self
    }

    /// Sets the in-subspace standard deviation.
    pub fn with_std_dev(mut self, s: f32) -> Self {
        self.std_dev = s;
        self
    }

    /// Sets the subspace dimensionality per cluster.
    pub fn with_subspace_dims(mut self, s: usize) -> Self {
        self.subspace_dims = s;
        self
    }

    /// Sets the noise fraction.
    pub fn with_noise(mut self, f: f64) -> Self {
        self.noise_fraction = f;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated dataset with its planted ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedData {
    /// The data matrix (not normalized; call
    /// [`DataMatrix::minmax_normalize`] to match the paper's preprocessing).
    pub data: DataMatrix,
    /// True cluster label per point (`-1` for noise points).
    pub labels: Vec<i32>,
    /// The planted subspace (sorted dims) per cluster.
    pub subspaces: Vec<Vec<usize>>,
}

/// Draws one standard-normal value via Box–Muller (two uniform draws).
fn gaussian(rng: &mut ProclusRng) -> f32 {
    // Uniforms in (0, 1]: avoid ln(0).
    let u1 = (rng.below(1 << 24) as f64 + 1.0) / (1u64 << 24) as f64;
    let u2 = rng.below(1 << 24) as f64 / (1u64 << 24) as f64;
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

fn uniform_in(rng: &mut ProclusRng, lo: f32, hi: f32) -> f32 {
    lo + (rng.below(1 << 24) as f32 / (1u64 << 24) as f32) * (hi - lo)
}

/// Generates a dataset according to `cfg`.
///
/// Cluster sizes split the non-noise points as evenly as possible; point
/// order is shuffled so clusters are not contiguous in the matrix (the
/// original generator also randomizes order). Panics if the configuration
/// is degenerate (`subspace_dims > d`, zero clusters, empty range).
pub fn generate(cfg: &SyntheticConfig) -> GeneratedData {
    assert!(cfg.n > 0 && cfg.d > 0, "empty dataset requested");
    assert!(cfg.num_clusters > 0, "need at least one cluster");
    assert!(
        cfg.subspace_dims >= 1 && cfg.subspace_dims <= cfg.d,
        "subspace_dims {} out of 1..={}",
        cfg.subspace_dims,
        cfg.d
    );
    assert!(
        cfg.value_range.1 > cfg.value_range.0,
        "empty value range {:?}",
        cfg.value_range
    );
    assert!((0.0..=1.0).contains(&cfg.noise_fraction), "noise fraction");

    let mut rng = ProclusRng::new(cfg.seed);
    let (lo, hi) = cfg.value_range;
    let k = cfg.num_clusters;

    // Per-cluster subspace and center. Centers keep a 2σ margin so clipped
    // tails do not pile up at the range border.
    let mut subspaces = Vec::with_capacity(k);
    let mut centers = Vec::with_capacity(k);
    let margin = (2.0 * cfg.std_dev).min((hi - lo) / 4.0);
    for _ in 0..k {
        let mut dims = rng.sample_distinct(cfg.d, cfg.subspace_dims);
        dims.sort_unstable();
        let center: Vec<f32> = (0..cfg.d)
            .map(|_| uniform_in(&mut rng, lo + margin, hi - margin))
            .collect();
        subspaces.push(dims);
        centers.push(center);
    }

    let noise_count = (cfg.n as f64 * cfg.noise_fraction).round() as usize;
    let clustered = cfg.n - noise_count;

    let mut flat = Vec::with_capacity(cfg.n * cfg.d);
    let mut labels = Vec::with_capacity(cfg.n);
    for p in 0..clustered {
        // Round-robin keeps sizes within 1 of each other.
        let c = p % k;
        labels.push(c as i32);
        #[allow(clippy::needless_range_loop)]
        for j in 0..cfg.d {
            let v = if subspaces[c].contains(&j) {
                (centers[c][j] + gaussian(&mut rng) * cfg.std_dev).clamp(lo, hi)
            } else {
                uniform_in(&mut rng, lo, hi)
            };
            flat.push(v);
        }
    }
    for _ in 0..noise_count {
        labels.push(-1);
        for _ in 0..cfg.d {
            flat.push(uniform_in(&mut rng, lo, hi));
        }
    }

    // Shuffle point order (labels move with their rows).
    let perm = rng.sample_distinct(cfg.n, cfg.n);
    let mut shuffled = Vec::with_capacity(cfg.n * cfg.d);
    let mut shuffled_labels = Vec::with_capacity(cfg.n);
    for &p in &perm {
        shuffled.extend_from_slice(&flat[p * cfg.d..(p + 1) * cfg.d]);
        shuffled_labels.push(labels[p]);
    }

    GeneratedData {
        data: DataMatrix::from_flat(shuffled, cfg.n, cfg.d).expect("generator output valid"),
        labels: shuffled_labels,
        subspaces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            n: 600,
            d: 8,
            num_clusters: 3,
            subspace_dims: 3,
            std_dev: 2.0,
            value_range: (0.0, 100.0),
            noise_fraction: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn shapes_and_labels_match_config() {
        let g = generate(&small());
        assert_eq!(g.data.n(), 600);
        assert_eq!(g.data.d(), 8);
        assert_eq!(g.labels.len(), 600);
        assert_eq!(g.subspaces.len(), 3);
        assert!(g.subspaces.iter().all(|s| s.len() == 3));
        // Round-robin sizes: 200 each.
        for c in 0..3 {
            assert_eq!(g.labels.iter().filter(|&&l| l == c).count(), 200);
        }
    }

    #[test]
    fn values_stay_in_range() {
        let g = generate(&small());
        assert!(g.data.flat().iter().all(|&v| (0.0..=100.0).contains(&v)));
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.data, b.data);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seed_differs() {
        let a = generate(&small());
        let b = generate(&small().with_seed(2));
        assert_ne!(a.data, b.data);
    }

    #[test]
    fn clusters_are_tight_in_their_subspace_and_wide_outside() {
        let g = generate(&small());
        // For cluster 0, the variance inside its subspace dims must be far
        // below the variance outside (uniform over the full range).
        let members: Vec<usize> = g
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 0)
            .map(|(p, _)| p)
            .collect();
        let var = |j: usize| {
            let vals: Vec<f64> = members.iter().map(|&p| g.data.get(p, j) as f64).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64
        };
        let inside = g.subspaces[0][0];
        let outside = (0..8).find(|j| !g.subspaces[0].contains(j)).unwrap();
        assert!(
            var(inside) * 10.0 < var(outside),
            "inside var {} vs outside var {}",
            var(inside),
            var(outside)
        );
    }

    #[test]
    fn noise_points_are_labeled_minus_one() {
        let g = generate(&small().with_noise(0.1));
        let noise = g.labels.iter().filter(|&&l| l == -1).count();
        assert_eq!(noise, 60);
    }

    #[test]
    fn gaussian_has_roughly_unit_variance() {
        let mut rng = ProclusRng::new(9);
        let vals: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng) as f64).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    #[should_panic(expected = "subspace_dims")]
    fn rejects_oversized_subspace() {
        generate(&SyntheticConfig {
            subspace_dims: 20,
            d: 5,
            ..small()
        });
    }
}
