//! # datagen — workloads for the GPU-FAST-PROCLUS experiments
//!
//! Two families of datasets, matching the paper's §5 setup:
//!
//! * [`synthetic`] — the subspace-cluster generator of Beer et al. (their ref. \[6\]),
//!   modified as in GPU-INSCY (ref. \[18\]) to plant Gaussian clusters in *arbitrary*
//!   axis-parallel subspaces (paper defaults: 64,000 × 15, 10 clusters in
//!   5-d subspaces, σ = 5.0 on a 0–100 value range).
//! * [`realworld`] — synthesizers reproducing the exact shapes of the
//!   paper's real-world datasets (glass 214×9, vowel 990×10, pendigits
//!   7494×16, SkyServer sky1×1/2×2/5×5 up to 934,073×17). The originals are
//!   not redistributable here; since the paper uses them purely as timing
//!   workloads of a given `(n, d)` with min–max normalization, clustered
//!   synthetic stand-ins of identical shape preserve the measured behavior
//!   (see DESIGN.md §2). Real CSV files can be loaded through [`io`]
//!   instead, drop-in.
//! * [`io`] — a small CSV loader/writer so users can run on their own data.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod io;
pub mod realworld;
pub mod synthetic;

pub use realworld::{glass_like, pendigits_like, sky_like, vowel_like, RealWorldSpec};
pub use synthetic::{generate, GeneratedData, SyntheticConfig};
