//! Synthesizers for the paper's real-world dataset shapes (§5).
//!
//! The paper evaluates on UCI glass / vowel / pendigits and three cuts of
//! the SDSS SkyServer catalog. Those files are not redistributable inside
//! this repository, and the experiments use them exclusively as *timing*
//! workloads of a given shape after min–max normalization (accuracy is out
//! of scope — §5.1 establishes that all variants return the same clustering
//! anyway). The stand-ins below reproduce the exact `(n, d)` and class
//! counts, and additionally mimic each dataset's *distributional
//! character* so that iteration counts and sphere populations behave like
//! the originals:
//!
//! * **glass** — oxide fractions: one dominant component (SiO₂-like) with
//!   small class-dependent shifts in the minor oxides;
//! * **vowel** — LPC-style coefficients: smooth, strongly correlated
//!   neighbors around class templates;
//! * **pendigits** — 8 resampled (x, y) pen positions: a random-walk
//!   stroke around a per-class template, so consecutive coordinates are
//!   correlated;
//! * **sky** — uniform sky coordinates plus correlated magnitudes/colors:
//!   object classes separate in the *color* dimensions but not in the
//!   positional ones — genuinely projected structure.
//!
//! To run on the genuine files, load them with [`crate::io::load_csv`] —
//! every API accepts any [`DataMatrix`].

use proclus::{DataMatrix, ProclusRng};

use crate::synthetic::GeneratedData;

/// Shape metadata for one real-world stand-in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealWorldSpec {
    /// Dataset name as used in the paper's Fig. 3g.
    pub name: &'static str,
    /// Number of points.
    pub n: usize,
    /// Number of features.
    pub d: usize,
    /// Number of classes (used as the planted cluster count).
    pub classes: usize,
}

/// The six shapes of Fig. 3g.
pub fn all_specs() -> Vec<RealWorldSpec> {
    vec![
        RealWorldSpec {
            name: "glass",
            n: 214,
            d: 9,
            classes: 6,
        },
        RealWorldSpec {
            name: "vowel",
            n: 990,
            d: 10,
            classes: 11,
        },
        RealWorldSpec {
            name: "pendigits",
            n: 7_494,
            d: 16,
            classes: 10,
        },
        RealWorldSpec {
            name: "sky1x1",
            n: 30_390,
            d: 17,
            classes: 12,
        },
        RealWorldSpec {
            name: "sky2x2",
            n: 133_095,
            d: 17,
            classes: 12,
        },
        RealWorldSpec {
            name: "sky5x5",
            n: 934_073,
            d: 17,
            classes: 12,
        },
    ]
}

fn uniform(rng: &mut ProclusRng, lo: f32, hi: f32) -> f32 {
    lo + (rng.below(1 << 24) as f32 / (1u64 << 24) as f32) * (hi - lo)
}

fn gaussian(rng: &mut ProclusRng) -> f32 {
    let u1 = (rng.below(1 << 24) as f64 + 1.0) / (1u64 << 24) as f64;
    let u2 = rng.below(1 << 24) as f64 / (1u64 << 24) as f64;
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

fn finish(rows: Vec<Vec<f32>>, labels: Vec<i32>, subspaces: Vec<Vec<usize>>) -> GeneratedData {
    let mut data = DataMatrix::from_rows(&rows).expect("synthesizer output valid");
    data.minmax_normalize(); // the paper min–max normalizes all data (§5)
    GeneratedData {
        data,
        labels,
        subspaces,
    }
}

/// Glass-shaped dataset: 214 × 9, 6 classes of oxide-fraction profiles.
pub fn glass_like(seed: u64) -> GeneratedData {
    let spec = &all_specs()[0];
    let mut rng = ProclusRng::new(seed ^ 0x61A5);
    // Per-class template: refractive-index-like feature + 8 oxide levels.
    let templates: Vec<Vec<f32>> = (0..spec.classes)
        .map(|_| {
            let mut t = vec![0.0f32; spec.d];
            t[0] = uniform(&mut rng, 40.0, 60.0); // RI proxy
            t[1] = uniform(&mut rng, 60.0, 80.0); // dominant SiO2-like
            for v in t.iter_mut().skip(2) {
                *v = uniform(&mut rng, 1.0, 20.0); // minor oxides
            }
            t
        })
        .collect();
    let mut rows = Vec::with_capacity(spec.n);
    let mut labels = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let c = i % spec.classes;
        let t = &templates[c];
        let row: Vec<f32> = t
            .iter()
            .enumerate()
            .map(|(j, &m)| {
                // Minor oxides scatter proportionally; dominant ones tightly.
                let sigma = if j <= 1 { 1.5 } else { 0.25 * m.max(1.0) };
                (m + gaussian(&mut rng) * sigma).max(0.0)
            })
            .collect();
        rows.push(row);
        labels.push(c as i32);
    }
    let subspaces = (0..spec.classes).map(|_| (0..spec.d).collect()).collect();
    finish(rows, labels, subspaces)
}

/// Vowel-shaped dataset: 990 × 10, 11 classes of smooth LPC-like profiles.
pub fn vowel_like(seed: u64) -> GeneratedData {
    let spec = &all_specs()[1];
    let mut rng = ProclusRng::new(seed ^ 0x70E1);
    // Smooth class templates: a low-frequency wave with random phase.
    let templates: Vec<Vec<f32>> = (0..spec.classes)
        .map(|_| {
            let phase = uniform(&mut rng, 0.0, std::f32::consts::TAU);
            let amp = uniform(&mut rng, 20.0, 45.0);
            let base = uniform(&mut rng, 40.0, 60.0);
            (0..spec.d)
                .map(|j| base + amp * (phase + j as f32 * 0.7).sin())
                .collect()
        })
        .collect();
    let mut rows = Vec::with_capacity(spec.n);
    let mut labels = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let c = i % spec.classes;
        let t = &templates[c];
        // Correlated deviation: a shared offset plus smooth per-dim noise.
        let speaker = gaussian(&mut rng) * 4.0;
        let row: Vec<f32> = t
            .iter()
            .map(|&m| m + speaker + gaussian(&mut rng) * 2.5)
            .collect();
        rows.push(row);
        labels.push(c as i32);
    }
    let subspaces = (0..spec.classes).map(|_| (0..spec.d).collect()).collect();
    finish(rows, labels, subspaces)
}

/// Pendigits-shaped dataset: 7,494 × 16, 10 classes; each row is 8
/// resampled (x, y) pen positions following a per-class stroke template
/// with random-walk jitter (consecutive coordinates correlate, as in the
/// real data).
pub fn pendigits_like(seed: u64) -> GeneratedData {
    let spec = &all_specs()[2];
    let mut rng = ProclusRng::new(seed ^ 0xD161);
    let templates: Vec<Vec<(f32, f32)>> = (0..spec.classes)
        .map(|_| {
            // A stroke: random walk of 8 points through the tablet.
            let mut x = uniform(&mut rng, 20.0, 80.0);
            let mut y = uniform(&mut rng, 20.0, 80.0);
            (0..8)
                .map(|_| {
                    x = (x + uniform(&mut rng, -25.0, 25.0)).clamp(0.0, 100.0);
                    y = (y + uniform(&mut rng, -25.0, 25.0)).clamp(0.0, 100.0);
                    (x, y)
                })
                .collect()
        })
        .collect();
    let mut rows = Vec::with_capacity(spec.n);
    let mut labels = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let c = i % spec.classes;
        let stroke = &templates[c];
        let mut row = Vec::with_capacity(16);
        // Writer-specific drift accumulates along the stroke.
        let mut dx = 0.0f32;
        let mut dy = 0.0f32;
        for &(tx, ty) in stroke {
            dx += gaussian(&mut rng) * 1.5;
            dy += gaussian(&mut rng) * 1.5;
            row.push((tx + dx).clamp(0.0, 100.0));
            row.push((ty + dy).clamp(0.0, 100.0));
        }
        rows.push(row);
        labels.push(c as i32);
    }
    let subspaces = (0..spec.classes).map(|_| (0..spec.d).collect()).collect();
    finish(rows, labels, subspaces)
}

fn sky_spec(area: u32) -> RealWorldSpec {
    let idx = match area {
        1 => 3,
        2 => 4,
        5 => 5,
        other => panic!("sky{other}x{other} is not one of the paper's cuts (1, 2, 5)"),
    };
    all_specs().swap_remove(idx)
}

/// SkyServer-shaped dataset of `area` ∈ {1, 2, 5}: 2 spherical coordinates
/// (uniform over the cut — classes do *not* separate there) + 5 correlated
/// magnitudes + 4 colors (magnitude differences) + 6 auxiliary features.
/// Object classes separate in the magnitude/color dimensions only: a
/// naturally *projected* clustering workload.
///
/// # Panics
///
/// Panics for an unsupported area.
pub fn sky_like(area: u32, seed: u64) -> GeneratedData {
    let spec = sky_spec(area);
    let mut rng = ProclusRng::new(seed ^ 0x5517 ^ area as u64);
    // Per-class spectral templates: base magnitude + color offsets.
    let templates: Vec<(f32, [f32; 5])> = (0..spec.classes)
        .map(|_| {
            let base = uniform(&mut rng, 14.0, 22.0);
            let mut colors = [0.0f32; 5];
            for c in colors.iter_mut() {
                *c = uniform(&mut rng, -1.5, 1.5);
            }
            (base, colors)
        })
        .collect();
    let extent = area as f32;
    let mut rows = Vec::with_capacity(spec.n);
    let mut labels = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let c = i % spec.classes;
        let (base, colors) = &templates[c];
        let mut row = Vec::with_capacity(spec.d);
        // ra/dec uniform over the cut: no class structure in these dims.
        row.push(uniform(&mut rng, 0.0, extent));
        row.push(uniform(&mut rng, 0.0, extent));
        // 5 magnitudes (u, g, r, i, z): shared brightness + class colors.
        let brightness = base + gaussian(&mut rng) * 0.8;
        let mags: Vec<f32> = colors
            .iter()
            .map(|&col| brightness + col + gaussian(&mut rng) * 0.12)
            .collect();
        row.extend_from_slice(&mags);
        // 4 colors: adjacent magnitude differences (tight per class).
        for w in mags.windows(2) {
            row.push(w[0] - w[1]);
        }
        // 6 auxiliary features (sizes, flags, errors): weak structure.
        for a in 0..6 {
            let v = if a % 2 == 0 {
                // Skewed positive (size/error-like): |gaussian| tail.
                gaussian(&mut rng).abs() * 3.0
            } else {
                uniform(&mut rng, 0.0, 100.0)
            };
            row.push(v);
        }
        rows.push(row);
        labels.push(c as i32);
    }
    // The meaningful projection: magnitudes + colors (dims 2..=10).
    let subspaces = (0..spec.classes).map(|_| (2..11).collect()).collect();
    finish(rows, labels, subspaces)
}

/// Fetches a stand-in by its Fig. 3g name.
pub fn by_name(name: &str, seed: u64) -> Option<GeneratedData> {
    match name {
        "glass" => Some(glass_like(seed)),
        "vowel" => Some(vowel_like(seed)),
        "pendigits" => Some(pendigits_like(seed)),
        "sky1x1" => Some(sky_like(1, seed)),
        "sky2x2" => Some(sky_like(2, seed)),
        "sky5x5" => Some(sky_like(5, seed)),
        _ => None,
    }
}

/// Asserts a matrix matches a spec's shape — used when substituting genuine
/// files loaded from CSV for the stand-ins.
pub fn check_shape(data: &DataMatrix, spec: &RealWorldSpec) -> bool {
    data.n() == spec.n && data.d() == spec.d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        let g = glass_like(1);
        assert_eq!((g.data.n(), g.data.d()), (214, 9));
        let v = vowel_like(1);
        assert_eq!((v.data.n(), v.data.d()), (990, 10));
        let p = pendigits_like(1);
        assert_eq!((p.data.n(), p.data.d()), (7_494, 16));
        let s = sky_like(1, 1);
        assert_eq!((s.data.n(), s.data.d()), (30_390, 17));
    }

    #[test]
    fn data_is_normalized() {
        for g in [glass_like(3), vowel_like(3), pendigits_like(3)] {
            assert!(g.data.flat().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn class_counts_match() {
        let v = vowel_like(2);
        let distinct: std::collections::HashSet<i32> =
            v.labels.iter().copied().filter(|&l| l >= 0).collect();
        assert_eq!(distinct.len(), 11);
    }

    #[test]
    fn by_name_roundtrip() {
        for spec in all_specs().iter().take(4) {
            let g = by_name(spec.name, 1).unwrap();
            assert!(check_shape(&g.data, spec), "{}", spec.name);
        }
        assert!(by_name("mnist", 1).is_none());
    }

    #[test]
    fn sky_positions_are_classless_but_colors_separate() {
        // Per-class mean must be ~uniform-center in ra/dec but distinct in
        // the color dims — the projected-structure property.
        let s = sky_like(1, 7);
        let class_mean = |c: i32, j: usize| {
            let vals: Vec<f64> = s
                .labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == c)
                .map(|(p, _)| s.data.get(p, j) as f64)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        // ra (dim 0): all class means near the global center (0.5 after
        // normalization).
        for c in 0..12 {
            let m = class_mean(c, 0);
            assert!((m - 0.5).abs() < 0.05, "class {c} ra mean {m}");
        }
        // color dim 7 (first magnitude difference): class means spread out.
        let color_means: Vec<f64> = (0..12).map(|c| class_mean(c, 7)).collect();
        let spread = color_means.iter().fold(0.0f64, |a, &m| a.max(m))
            - color_means.iter().fold(1.0f64, |a, &m| a.min(m));
        assert!(spread > 0.2, "color spread {spread}");
    }

    #[test]
    fn pendigits_neighbor_coordinates_correlate() {
        // Random-walk strokes: consecutive x coordinates within a class
        // correlate far more than distant ones on average.
        let p = pendigits_like(5);
        let members: Vec<usize> = p
            .labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 0)
            .map(|(i, _)| i)
            .collect();
        let corr = |j1: usize, j2: usize| {
            let a: Vec<f64> = members
                .iter()
                .map(|&p_| p.data.get(p_, j1) as f64)
                .collect();
            let b: Vec<f64> = members
                .iter()
                .map(|&p_| p.data.get(p_, j2) as f64)
                .collect();
            let ma = a.iter().sum::<f64>() / a.len() as f64;
            let mb = b.iter().sum::<f64>() / b.len() as f64;
            let cov: f64 = a.iter().zip(&b).map(|(x, y)| (x - ma) * (y - mb)).sum();
            let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
            let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
            cov / (va.sqrt() * vb.sqrt()).max(1e-12)
        };
        // x coords live at even indices: neighbors (dims 12, 14) vs the
        // stroke's first x (dim 0) — drift accumulates, so late neighbors
        // correlate strongly.
        assert!(corr(12, 14) > corr(0, 14) + 0.1, "neighbor correlation");
    }

    #[test]
    #[should_panic(expected = "not one of the paper's cuts")]
    fn sky_rejects_unknown_area() {
        sky_like(3, 1);
    }
}
