//! Minimal CSV I/O for numeric datasets.
//!
//! Deliberately small: comma-separated floats, an optional header row, and
//! an optional label column. Enough to drop the genuine UCI/SkyServer files
//! into the experiment harnesses in place of the synthesized stand-ins.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use proclus::{DataMatrix, ProclusError, Result};

/// A dataset loaded from CSV: the matrix plus optional integer labels.
#[derive(Debug, Clone)]
pub struct CsvData {
    /// The feature matrix.
    pub data: DataMatrix,
    /// Labels from the designated column, if one was given.
    pub labels: Option<Vec<i32>>,
}

/// Loads a CSV file. `label_col` designates a column holding integer class
/// labels which is excluded from the feature matrix.
pub fn load_csv(path: &Path, has_header: bool, label_col: Option<usize>) -> Result<CsvData> {
    let file = File::open(path).map_err(|e| ProclusError::InvalidData {
        reason: format!("open {path:?}: {e}"),
    })?;
    let reader = BufReader::new(file);

    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut labels: Vec<i32> = Vec::new();
    let mut line_buf = String::new();
    let mut lines = reader.lines();
    if has_header {
        lines.next();
    }
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| ProclusError::InvalidData {
            reason: format!("read: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        line_buf.clear();
        line_buf.push_str(&line);
        let mut row = Vec::new();
        for (col, tok) in line_buf.split(',').enumerate() {
            let tok = tok.trim();
            if Some(col) == label_col {
                let lab: i32 = tok.parse().map_err(|_| ProclusError::InvalidData {
                    reason: format!("line {}: label `{tok}` not an integer", lineno + 1),
                })?;
                labels.push(lab);
            } else {
                let v: f32 = tok.parse().map_err(|_| ProclusError::InvalidData {
                    reason: format!("line {}: value `{tok}` not a number", lineno + 1),
                })?;
                if !v.is_finite() {
                    return Err(ProclusError::InvalidData {
                        reason: format!(
                            "line {}: non-finite value `{tok}` in column {col}",
                            lineno + 1
                        ),
                    });
                }
                row.push(v);
            }
        }
        // Ragged rows get a line-numbered error here rather than the
        // shape-only error `from_rows` would produce.
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(ProclusError::InvalidData {
                    reason: format!(
                        "line {}: {} feature column(s), expected {}",
                        lineno + 1,
                        row.len(),
                        first.len()
                    ),
                });
            }
        }
        if let Some(lc) = label_col {
            if labels.len() != rows.len() + 1 {
                return Err(ProclusError::InvalidData {
                    reason: format!(
                        "line {}: no label column {lc} (row has {} column(s))",
                        lineno + 1,
                        row.len()
                    ),
                });
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(ProclusError::InvalidData {
            reason: format!("{path:?}: no data rows"),
        });
    }
    let data = DataMatrix::from_rows(&rows)?;
    Ok(CsvData {
        data,
        labels: label_col.map(|_| labels),
    })
}

/// Writes a matrix (plus optional labels as a last column) to CSV.
pub fn write_csv(path: &Path, data: &DataMatrix, labels: Option<&[i32]>) -> Result<()> {
    let file = File::create(path).map_err(|e| ProclusError::InvalidData {
        reason: format!("create {path:?}: {e}"),
    })?;
    let mut out = BufWriter::new(file);
    for p in 0..data.n() {
        let row = data.row(p);
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                write!(out, ",").ok();
            }
            write!(out, "{v}").ok();
        }
        if let Some(labels) = labels {
            write!(out, ",{}", labels[p]).ok();
        }
        writeln!(out).ok();
    }
    out.flush().map_err(|e| ProclusError::InvalidData {
        reason: format!("flush: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("proclus-datagen-{name}-{}.csv", std::process::id()))
    }

    #[test]
    fn roundtrip_without_labels() {
        let path = tmp("plain");
        let data = DataMatrix::from_rows(&[vec![1.0, 2.5], vec![-3.0, 0.25]]).unwrap();
        write_csv(&path, &data, None).unwrap();
        let loaded = load_csv(&path, false, None).unwrap();
        assert_eq!(loaded.data, data);
        assert!(loaded.labels.is_none());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_with_labels_in_last_column() {
        let path = tmp("labeled");
        let data = DataMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        write_csv(&path, &data, Some(&[5, -1])).unwrap();
        let loaded = load_csv(&path, false, Some(2)).unwrap();
        assert_eq!(loaded.data, data);
        assert_eq!(loaded.labels, Some(vec![5, -1]));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn header_is_skipped() {
        let path = tmp("header");
        std::fs::write(&path, "a,b\n1.0,2.0\n3.0,4.0\n").unwrap();
        let loaded = load_csv(&path, true, None).unwrap();
        assert_eq!(loaded.data.n(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_number_is_a_clear_error() {
        let path = tmp("bad");
        std::fs::write(&path, "1.0,oops\n").unwrap();
        let err = load_csv(&path, false, None).unwrap_err();
        assert!(err.to_string().contains("oops"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_csv(Path::new("/nonexistent/x.csv"), false, None).is_err());
    }

    #[test]
    fn ragged_row_reports_line_and_widths() {
        let path = tmp("ragged");
        std::fs::write(&path, "1.0,2.0\n3.0,4.0,5.0\n").unwrap();
        let err = load_csv(&path, false, None).unwrap_err();
        assert!(matches!(err, ProclusError::InvalidData { .. }));
        assert!(
            err.to_string().contains("line 2") && err.to_string().contains("expected 2"),
            "{err}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn non_finite_values_are_rejected() {
        for bad in ["nan", "inf", "-inf", "NaN", "Infinity"] {
            let path = tmp(&format!("nonfinite-{}", bad.to_lowercase()));
            std::fs::write(&path, format!("1.0,{bad}\n")).unwrap();
            let err = load_csv(&path, false, None).unwrap_err();
            assert!(matches!(err, ProclusError::InvalidData { .. }));
            assert!(err.to_string().contains("non-finite"), "{bad}: {err}");
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn empty_file_is_a_typed_error() {
        let path = tmp("empty");
        std::fs::write(&path, "").unwrap();
        let err = load_csv(&path, false, None).unwrap_err();
        assert!(matches!(err, ProclusError::InvalidData { .. }));
        assert!(err.to_string().contains("no data rows"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn header_only_file_is_a_typed_error() {
        let path = tmp("header-only");
        std::fs::write(&path, "a,b,c\n").unwrap();
        let err = load_csv(&path, true, None).unwrap_err();
        assert!(err.to_string().contains("no data rows"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn out_of_range_label_column_is_a_typed_error() {
        let path = tmp("label-range");
        std::fs::write(&path, "1.0,2.0\n").unwrap();
        let err = load_csv(&path, false, Some(7)).unwrap_err();
        assert!(matches!(err, ProclusError::InvalidData { .. }));
        assert!(err.to_string().contains("no label column 7"), "{err}");
        std::fs::remove_file(path).ok();
    }
}
