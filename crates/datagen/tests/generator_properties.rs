//! Property-based tests of the synthetic generator: structural guarantees
//! for arbitrary configurations and statistical guarantees for the planted
//! clusters.

use proptest::prelude::*;

use datagen::synthetic::{generate, SyntheticConfig};

fn config_strategy() -> impl Strategy<Value = SyntheticConfig> {
    (
        50usize..400, // n
        2usize..10,   // d
        1usize..6,    // clusters
        0.5f32..10.0, // std dev
        0.0f64..0.3,  // noise
        any::<u64>(), // seed
    )
        .prop_map(|(n, d, clusters, std_dev, noise, seed)| SyntheticConfig {
            n,
            d,
            num_clusters: clusters,
            subspace_dims: (d / 2).max(1),
            std_dev,
            value_range: (0.0, 100.0),
            noise_fraction: noise,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every configuration yields the right shapes, in-range values, and
    /// labels consistent with the cluster count.
    #[test]
    fn generator_structural_invariants(cfg in config_strategy()) {
        let g = generate(&cfg);
        prop_assert_eq!(g.data.n(), cfg.n);
        prop_assert_eq!(g.data.d(), cfg.d);
        prop_assert_eq!(g.labels.len(), cfg.n);
        prop_assert_eq!(g.subspaces.len(), cfg.num_clusters);
        prop_assert!(g.data.flat().iter().all(|v| (0.0..=100.0).contains(v)));
        for s in &g.subspaces {
            prop_assert_eq!(s.len(), cfg.subspace_dims);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(s.iter().all(|&j| j < cfg.d));
        }
        let expected_noise = (cfg.n as f64 * cfg.noise_fraction).round() as usize;
        let noise = g.labels.iter().filter(|&&l| l == -1).count();
        prop_assert_eq!(noise, expected_noise);
        for &l in &g.labels {
            prop_assert!(l == -1 || (0..cfg.num_clusters as i32).contains(&l));
        }
        // Non-noise sizes balanced within one of each other.
        let mut sizes = vec![0usize; cfg.num_clusters];
        for &l in &g.labels {
            if l >= 0 {
                sizes[l as usize] += 1;
            }
        }
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(hi - lo <= 1, "sizes {sizes:?}");
    }

    /// Same seed reproduces bit-for-bit; different seeds differ.
    #[test]
    fn generator_determinism(cfg in config_strategy()) {
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(a.data, b.data);
        prop_assert_eq!(a.labels, b.labels);
        let mut cfg2 = cfg.clone();
        cfg2.seed = cfg.seed.wrapping_add(1);
        let c = generate(&cfg2);
        // n*d values all equal under a different seed is astronomically
        // unlikely; allow it only for degenerate tiny configs.
        if cfg.n * cfg.d > 20 {
            prop_assert!(c.data != generate(&cfg).data);
        }
    }

    /// Statistical guarantee: inside a cluster's subspace the sample σ is
    /// close to the configured σ (and far below the uniform-noise σ of the
    /// other dimensions) when clusters are tight and populated.
    #[test]
    fn planted_sigma_is_respected(seed in any::<u64>()) {
        let cfg = SyntheticConfig {
            n: 900,
            d: 6,
            num_clusters: 3,
            subspace_dims: 3,
            std_dev: 3.0,
            value_range: (0.0, 100.0),
            noise_fraction: 0.0,
            seed,
        };
        let g = generate(&cfg);
        for cluster in 0..3 {
            let members: Vec<usize> = g
                .labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == cluster as i32)
                .map(|(p, _)| p)
                .collect();
            let sigma = |j: usize| {
                let vals: Vec<f64> =
                    members.iter().map(|&p| g.data.get(p, j) as f64).collect();
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                    / vals.len() as f64)
                    .sqrt()
            };
            let inside = g.subspaces[cluster][0];
            let outside = (0..6)
                .find(|j| !g.subspaces[cluster].contains(j))
                .expect("3 of 6 dims are outside");
            let s_in = sigma(inside);
            let s_out = sigma(outside);
            // Configured 3.0 (clipping can only shrink it); uniform over
            // 0..100 has sigma ~28.9.
            prop_assert!(s_in < 4.5, "inside sigma {s_in}");
            prop_assert!(s_out > 20.0, "outside sigma {s_out}");
        }
    }
}
