//! Property tests pinning the vectorized distance kernels bitwise to
//! their scalar counterparts — the tentpole contract of
//! `proclus::distance_simd` (see DESIGN.md §14). Strategies deliberately
//! sweep every `n % 8` remainder (0–7 tail lanes), arbitrary subspace
//! masks, and non-finite inputs: a NaN or ±∞ must flow through the lane
//! kernels exactly as it does through the scalar loop, never be masked.
//! The CPU backend's gathered `dist_subset` is covered here too; the GPU
//! and sharded backends are pinned by their own equivalence suites.

use proptest::prelude::*;

use proclus::backend::{Backend, CpuBackend};
use proclus::dataset::DataMatrix;
use proclus::distance::{euclidean, manhattan_segmental};
use proclus::distance_simd::{
    dist_rows_strip, euclidean_strip, euclidean_strip_portable, fold_abs_diff, fold_sum,
    nearest_medoid, nearest_medoid8, segmental8, LANES,
};
use proclus::par::Executor;

/// Mostly ordinary coordinates with a sprinkle of adversarial values:
/// non-finite, denormal-scale, and near-overflow magnitudes.
fn coord() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(|r| match r % 12 {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => 1e-40,
        4 => 3.4e38,
        _ => (r >> 8) as f32 / 1_000.0 - 8_000.0,
    })
}

fn flat(n: usize, d: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(coord(), n * d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dispatched strip (AVX where detected) equals the scalar kernel
    /// bit for bit on every point, across all tail-lane counts.
    #[test]
    fn strip_matches_scalar_bitwise(
        n in 0usize..26,
        d in 1usize..20,
        seed in any::<u64>(),
    ) {
        let data = weyl(n * d + d, seed);
        let (points, m) = data.split_at(n * d);
        let mut out = vec![0.0f32; n];
        euclidean_strip(points, d, m, &mut out);
        for i in 0..n {
            let want = euclidean(&points[i * d..(i + 1) * d], m);
            prop_assert_eq!(out[i].to_bits(), want.to_bits(), "i={}", i);
        }
    }

    /// Same contract under adversarial values: ±∞, denormals and
    /// overflow stay bitwise-identical, and NaN-ness propagates
    /// identically. NaN *payloads* are out of contract — when two NaNs
    /// meet in an add, which payload survives depends on operand order,
    /// which LLVM may commute even between two builds of the scalar
    /// kernel (see the `distance_simd` module docs).
    #[test]
    fn strip_matches_scalar_on_non_finite(
        (n, d, values) in (1usize..18, 1usize..10)
            .prop_flat_map(|(n, d)| (Just(n), Just(d), flat(n + 1, d))),
    ) {
        let points = &values[..n * d];
        let m = &values[n * d..(n + 1) * d];
        let mut out = vec![0.0f32; n];
        euclidean_strip(points, d, m, &mut out);
        for i in 0..n {
            let want = euclidean(&points[i * d..(i + 1) * d], m);
            if want.is_nan() {
                prop_assert!(out[i].is_nan(), "i={}: NaN was masked", i);
            } else {
                prop_assert_eq!(out[i].to_bits(), want.to_bits(), "i={}", i);
            }
        }
    }

    /// The AVX dispatch and the portable reference are interchangeable.
    #[test]
    fn dispatched_and_portable_strips_agree(
        n in 0usize..40,
        d in 1usize..33,
        seed in any::<u64>(),
    ) {
        let data = weyl(n * d + d, seed);
        let (points, m) = data.split_at(n * d);
        let mut fast = vec![0.0f32; n];
        let mut reference = vec![0.0f32; n];
        euclidean_strip(points, d, m, &mut fast);
        euclidean_strip_portable(points, d, m, &mut reference);
        prop_assert_eq!(
            fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// The cache-blocked batch kernel equals per-row scalar sweeps.
    #[test]
    fn blocked_batch_matches_scalar_bitwise(
        n in 0usize..22,
        d in 1usize..12,
        rows in 1usize..5,
        seed in any::<u64>(),
    ) {
        let data = weyl(n * d + rows * d, seed);
        let (points, medoids) = data.split_at(n * d);
        let m_rows: Vec<&[f32]> = medoids.chunks(d).take(rows).collect();
        let mut blocked = vec![vec![0.0f32; n]; m_rows.len()];
        {
            let mut outs: Vec<&mut [f32]> =
                blocked.iter_mut().map(|r| r.as_mut_slice()).collect();
            dist_rows_strip(points, d, &m_rows, &mut outs);
        }
        for (r, m) in m_rows.iter().enumerate() {
            for i in 0..n {
                let want = euclidean(&points[i * d..(i + 1) * d], m);
                prop_assert_eq!(blocked[r][i].to_bits(), want.to_bits(), "r={} i={}", r, i);
            }
        }
    }

    /// Lane-parallel segmental distance under arbitrary subspace masks.
    #[test]
    fn segmental_lanes_match_scalar_under_masks(
        d in 1usize..16,
        mask in proptest::collection::vec(any::<bool>(), 1..16),
        seed in any::<u64>(),
    ) {
        let mut dims: Vec<usize> = mask.iter().take(d).enumerate()
            .filter_map(|(j, &on)| on.then_some(j))
            .collect();
        if dims.is_empty() {
            dims.push(0); // the kernels pin a non-empty subspace invariant
        }
        let data = weyl(LANES * d + d, seed);
        let (points, m) = data.split_at(LANES * d);
        let lanes: [&[f32]; LANES] =
            std::array::from_fn(|l| &points[l * d..(l + 1) * d]);
        let got = segmental8(lanes, m, &dims);
        for l in 0..LANES {
            let want = manhattan_segmental(lanes[l], m, &dims);
            prop_assert_eq!(got[l].to_bits(), want.to_bits(), "lane {}", l);
        }
    }

    /// The eight-lane assignment rule picks the same medoid as the scalar
    /// rule, including ties (lower index wins).
    #[test]
    fn nearest_medoid_lanes_match_scalar(
        d in 1usize..8,
        k in 1usize..6,
        duplicate_first in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let data = weyl(LANES * d + k * d, seed);
        let (points, medoid_flat) = data.split_at(LANES * d);
        let mut medoids: Vec<&[f32]> = medoid_flat.chunks(d).take(k).collect();
        if duplicate_first && medoids.len() > 1 {
            medoids[1] = medoids[0]; // force exact ties
        }
        let subspaces: Vec<Vec<usize>> =
            (0..medoids.len()).map(|i| vec![i % d]).collect();
        let lanes: [&[f32]; LANES] =
            std::array::from_fn(|l| &points[l * d..(l + 1) * d]);
        let got = nearest_medoid8(lanes, &medoids, &subspaces);
        for l in 0..LANES {
            prop_assert_eq!(got[l], nearest_medoid(lanes[l], &medoids, &subspaces));
        }
    }

    /// The unrolled `H` folds preserve each dimension's chain exactly.
    #[test]
    fn h_folds_match_scalar_chains(
        d in 1usize..40,
        points in 1usize..6,
        seed in any::<u64>(),
    ) {
        let data = weyl(points * d + d, seed);
        let (rows, m) = data.split_at(points * d);
        let mut h_fast = vec![0.0f64; d];
        let mut h_ref = vec![0.0f64; d];
        let mut s_fast = vec![0.0f64; d];
        let mut s_ref = vec![0.0f64; d];
        for p in 0..points {
            let row = &rows[p * d..(p + 1) * d];
            fold_abs_diff(&mut h_fast, row, m);
            fold_sum(&mut s_fast, row);
            for j in 0..d {
                h_ref[j] += ((row[j] - m[j]) as f64).abs();
                s_ref[j] += row[j] as f64;
            }
        }
        for j in 0..d {
            prop_assert_eq!(h_fast[j].to_bits(), h_ref[j].to_bits(), "h j={}", j);
            prop_assert_eq!(s_fast[j].to_bits(), s_ref[j].to_bits(), "s j={}", j);
        }
    }

    /// The CPU backend's gathered streaming primitive stays bitwise-equal
    /// to per-point scalar distances for arbitrary index subsets.
    #[test]
    fn cpu_dist_subset_matches_scalar(
        n in 9usize..30,
        d in 1usize..8,
        seed in any::<u64>(),
        pick in proptest::collection::vec(any::<usize>(), 0..20),
    ) {
        let values = weyl(n * d, seed);
        let data = DataMatrix::from_flat(values, n, d).expect("valid matrix");
        let medoid = 3 % n;
        let points: Vec<usize> = pick.iter().map(|i| i % n).collect();
        let mut backend = CpuBackend::new(&data, Executor::Sequential);
        let got = backend
            .dist_subset(medoid, &points, &proclus::telemetry::NullRecorder)
            .expect("cpu backend supports dist_subset");
        prop_assert_eq!(got.len(), points.len());
        for (i, &p) in points.iter().enumerate() {
            let want = euclidean(data.row(medoid), data.row(p));
            prop_assert_eq!(got[i].to_bits(), want.to_bits(), "i={} p={}", i, p);
        }
    }
}

/// Deterministic fill used by the non-adversarial cases (proptest drives
/// only the shape and seed, keeping shrinking cheap).
fn weyl(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            ((state >> 40) as f32) / 256.0 - 32_768.0
        })
        .collect()
}
