//! FindDimensions (Alg. 1 line 7, GPU Alg. 4): from the averaged
//! per-dimension distances `X`, derive the spread statistics `Y`, `σ`, `Z`
//! and greedily pick the projected subspaces `D_i`.

/// The spread statistics of one FindDimensions invocation, exposed for the
/// property tests and the GPU kernels.
#[derive(Debug, Clone)]
pub struct SpreadStats {
    /// Row-major `k × d` relative spread `Z_{i,j} = (X_{i,j} − Y_i) / σ_i`.
    pub z: Vec<f64>,
    /// Per-medoid mean `Y_i` of `X_{i,·}`.
    pub y: Vec<f64>,
    /// Per-medoid standard deviation `σ_i` of `X_{i,·}` (with `d − 1`).
    pub sigma: Vec<f64>,
}

/// Computes `Y`, `σ` and `Z` from the averaged distance matrix `X`
/// (row-major `k × d`).
///
/// Note: the paper's prose gives `σ_i = sqrt(ΣX/(d−1))`, a typo; Alg. 4
/// lines 9–11 and the original PROCLUS paper define
/// `σ_i = sqrt(Σ_j (X_{i,j} − Y_i)² / (d−1))`, implemented here.
/// A zero `σ_i` (all dimensions equally spread, e.g. a singleton sphere)
/// yields `Z_{i,j} = 0` for the whole row.
pub fn spread_stats(x: &[f64], k: usize, d: usize) -> SpreadStats {
    assert_eq!(x.len(), k * d);
    assert!(d >= 2, "need at least 2 dimensions for sigma");
    let mut y = vec![0.0f64; k];
    let mut sigma = vec![0.0f64; k];
    let mut z = vec![0.0f64; k * d];
    for i in 0..k {
        let row = &x[i * d..(i + 1) * d];
        y[i] = row.iter().sum::<f64>() / d as f64;
        let ss: f64 = row.iter().map(|v| (v - y[i]) * (v - y[i])).sum();
        sigma[i] = (ss / (d - 1) as f64).sqrt();
        for j in 0..d {
            z[i * d + j] = if sigma[i] > 0.0 {
                (row[j] - y[i]) / sigma[i]
            } else {
                0.0
            };
        }
    }
    SpreadStats { z, y, sigma }
}

/// Greedy subspace selection (Alg. 4 lines 15–16): each medoid first gets
/// the two dimensions with its smallest `Z_{i,j}`; the remaining
/// `k·l − 2k` slots go to the globally smallest remaining `Z` values.
///
/// Ties break lexicographically on `(Z, i, j)` so every variant (CPU and
/// GPU) makes identical picks. Returns one sorted dimension list per
/// medoid with `Σ|D_i| = k·l`.
pub fn pick_dimensions(z: &[f64], k: usize, d: usize, l: usize) -> Vec<Vec<usize>> {
    assert_eq!(z.len(), k * d);
    assert!(l >= 2 && l <= d, "l = {l} must lie in 2..=d ({d})");
    let mut dims: Vec<Vec<usize>> = vec![Vec::with_capacity(l + 2); k];
    let mut taken = vec![false; k * d];

    // Two smallest Z per medoid.
    for i in 0..k {
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| {
            z[i * d + a]
                .total_cmp(&z[i * d + b])
                .then_with(|| a.cmp(&b))
        });
        for &j in order.iter().take(2) {
            dims[i].push(j);
            taken[i * d + j] = true;
        }
    }

    // Globally smallest remaining Z for the last k·l − 2k slots.
    let remaining = k * l - 2 * k;
    if remaining > 0 {
        let mut order: Vec<usize> = (0..k * d).filter(|&e| !taken[e]).collect();
        order.sort_by(|&a, &b| z[a].total_cmp(&z[b]).then_with(|| a.cmp(&b)));
        for &e in order.iter().take(remaining) {
            dims[e / d].push(e % d);
        }
    }

    for s in &mut dims {
        s.sort_unstable();
    }
    dims
}

/// Convenience wrapper: statistics plus selection in one call.
pub fn find_dimensions(x: &[f64], k: usize, d: usize, l: usize) -> Vec<Vec<usize>> {
    let stats = spread_stats(x, k, d);
    pick_dimensions(&stats.z, k, d, l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_hand_computation() {
        // k = 1, d = 3, X = [1, 2, 3] → Y = 2, σ = sqrt(2/2) = 1
        let s = spread_stats(&[1.0, 2.0, 3.0], 1, 3);
        assert_eq!(s.y, vec![2.0]);
        assert_eq!(s.sigma, vec![1.0]);
        assert_eq!(s.z, vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn zero_sigma_gives_zero_z() {
        let s = spread_stats(&[5.0, 5.0, 5.0], 1, 3);
        assert_eq!(s.sigma, vec![0.0]);
        assert!(s.z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pick_prefers_low_spread_dimensions() {
        // Medoid 0 clusters tightly in dims 1 and 3 (low X), medoid 1 in 0 and 2.
        let x = vec![
            9.0, 1.0, 8.0, 0.5, // medoid 0
            0.2, 7.0, 0.9, 9.0, // medoid 1
        ];
        let dims = find_dimensions(&x, 2, 4, 2);
        assert_eq!(dims[0], vec![1, 3]);
        assert_eq!(dims[1], vec![0, 2]);
    }

    #[test]
    fn totals_and_minimum_per_medoid_hold() {
        let k = 4;
        let d = 10;
        let l = 5;
        let x: Vec<f64> = (0..k * d).map(|e| ((e * 7919) % 97) as f64).collect();
        let dims = find_dimensions(&x, k, d, l);
        let total: usize = dims.iter().map(|s| s.len()).sum();
        assert_eq!(total, k * l);
        for s in &dims {
            assert!(s.len() >= 2);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
        }
    }

    #[test]
    fn extra_dims_go_to_globally_smallest_z() {
        // Medoid 0 has very uniform spread (Z ≈ 0-ish range), medoid 1 has
        // two extremely tight dims beyond its first two → with l = 3, both
        // extra slots should go to medoid 1's remaining small-Z dims.
        let x = vec![
            5.0, 5.1, 5.2, 5.3, // medoid 0: nearly uniform
            0.0, 0.1, 0.2, 9.0, // medoid 1: three tight dims, one wild
        ];
        let dims = find_dimensions(&x, 2, 4, 3);
        assert_eq!(dims[0].len() + dims[1].len(), 6);
        assert!(dims[1].contains(&2), "medoid 1's third tight dim picked");
        // Every medoid keeps its two guaranteed dims.
        assert!(dims[0].len() >= 2 && dims[1].len() >= 2);
    }

    #[test]
    fn l_equals_two_gives_exactly_two_each() {
        let x: Vec<f64> = (0..3 * 5).map(|e| (e % 7) as f64).collect();
        let dims = pick_dimensions(&spread_stats(&x, 3, 5).z, 3, 5, 2);
        assert!(dims.iter().all(|s| s.len() == 2));
    }

    #[test]
    fn deterministic_under_exact_ties() {
        // All-equal Z: selection must still be well-defined and identical
        // across calls (lowest (i, j) wins).
        let z = vec![0.0; 2 * 4];
        let a = pick_dimensions(&z, 2, 4, 3);
        let b = pick_dimensions(&z, 2, 4, 3);
        assert_eq!(a, b);
        // Each medoid is guaranteed dims {0, 1}; the two spare slots go to
        // the globally first untaken entries, which are medoid 0's dims 2,3.
        assert_eq!(a[0], vec![0, 1, 2, 3]);
        assert_eq!(a[1], vec![0, 1]);
    }
}
