//! Bad-medoid detection and replacement (Alg. 1 lines 13–14).

use crate::params::BadMedoidRule;
use crate::rng::ProclusRng;

/// Identifies the bad medoid *slots* of the best clustering.
///
/// Under [`BadMedoidRule::PaperEdbt22`]: every slot whose cluster is
/// smaller than `(n/k) · minDev`; if no such slot exists, the single slot
/// with the smallest cluster (lowest index on ties).
///
/// Under [`BadMedoidRule::Original99`]: the smallest cluster's slot is
/// always bad, plus every slot below the threshold.
///
/// The returned slots are sorted and non-empty (the search must always be
/// able to move).
pub fn compute_bad_medoids(
    sizes: &[usize],
    n: usize,
    min_dev: f64,
    rule: BadMedoidRule,
) -> Vec<usize> {
    let k = sizes.len();
    let threshold = (n as f64 / k as f64) * min_dev;
    let mut bad: Vec<usize> = (0..k).filter(|&i| (sizes[i] as f64) < threshold).collect();
    let smallest = (0..k)
        .min_by(|&a, &b| sizes[a].cmp(&sizes[b]).then(a.cmp(&b)))
        .expect("k >= 1");
    match rule {
        BadMedoidRule::PaperEdbt22 => {
            if bad.is_empty() {
                bad.push(smallest);
            }
        }
        BadMedoidRule::Original99 => {
            if !bad.contains(&smallest) {
                bad.push(smallest);
                bad.sort_unstable();
            }
        }
    }
    bad
}

/// Builds the next `MCur` from `MBest` by replacing the bad slots with
/// random members of `M` (drawn by index into `M`) that are not already in
/// use. Good slots keep their position, which is what lets FAST* retain its
/// per-slot caches (§3.2).
///
/// When `M` is large enough, the draw also avoids re-selecting the value
/// being replaced so the search always moves.
pub fn replace_bad_medoids(
    mbest: &[usize],
    bad_slots: &[usize],
    m_len: usize,
    rng: &mut ProclusRng,
) -> Vec<usize> {
    let k = mbest.len();
    let mut mcur = mbest.to_vec();
    // Can we afford to exclude the old values of the bad slots too?
    let strict = m_len > k + bad_slots.len();
    for &slot in bad_slots {
        let old = mbest[slot];
        let next = rng.draw_until(m_len, |c| !mcur.contains(&c) && (!strict || c != old));
        mcur[slot] = next;
    }
    mcur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_slots_are_bad() {
        // n = 100, k = 4, minDev = 0.7 → threshold 17.5
        let bad = compute_bad_medoids(&[40, 10, 35, 15], 100, 0.7, BadMedoidRule::PaperEdbt22);
        assert_eq!(bad, vec![1, 3]);
    }

    #[test]
    fn paper_rule_falls_back_to_smallest() {
        let bad = compute_bad_medoids(&[30, 25, 25, 20], 100, 0.7, BadMedoidRule::PaperEdbt22);
        assert_eq!(bad, vec![3]);
    }

    #[test]
    fn original_rule_always_includes_smallest() {
        let bad = compute_bad_medoids(&[40, 10, 35, 15], 100, 0.7, BadMedoidRule::Original99);
        assert_eq!(bad, vec![1, 3]);
        let bad = compute_bad_medoids(&[30, 25, 25, 20], 100, 0.7, BadMedoidRule::Original99);
        assert_eq!(bad, vec![3]);
    }

    #[test]
    fn smallest_ties_break_to_lowest_slot() {
        let bad = compute_bad_medoids(&[25, 25, 25, 25], 100, 0.7, BadMedoidRule::PaperEdbt22);
        assert_eq!(bad, vec![0]);
    }

    #[test]
    fn replacement_preserves_good_slots_and_stays_distinct() {
        let mut rng = ProclusRng::new(17);
        let mbest = vec![3, 7, 11, 2];
        for _ in 0..50 {
            let mcur = replace_bad_medoids(&mbest, &[1, 3], 100, &mut rng);
            assert_eq!(mcur[0], 3);
            assert_eq!(mcur[2], 11);
            assert_ne!(mcur[1], 7, "bad slot must change when M is large");
            assert_ne!(mcur[3], 2);
            let set: std::collections::HashSet<_> = mcur.iter().collect();
            assert_eq!(set.len(), 4, "medoids must stay distinct: {mcur:?}");
        }
    }

    #[test]
    fn replacement_works_when_m_barely_fits() {
        // m_len = k: only permutations possible; strict mode must disable.
        let mut rng = ProclusRng::new(5);
        let mbest = vec![0, 1, 2];
        let mcur = replace_bad_medoids(&mbest, &[2], 4, &mut rng);
        let set: std::collections::HashSet<_> = mcur.iter().collect();
        assert_eq!(set.len(), 3);
        assert!(mcur.iter().all(|&c| c < 4));
    }
}
