//! The PROCLUS sub-phases (Alg. 1): initialization, the iterative-phase
//! building blocks (ComputeL, FindDimensions, AssignPoints,
//! EvaluateClusters, bad-medoid handling) and the refinement phase.
//!
//! These functions are shared verbatim by the sequential, FAST, FAST* and
//! multi-core variants (through [`crate::par::Executor`]); the GPU crate
//! re-implements the numeric kernels on the simulated device but reuses the
//! *decision* logic (`pick_dimensions`, `compute_bad_medoids`,
//! `replace_bad_medoids`) so that all variants follow the same search path
//! for the same seed.

pub mod assign;
pub mod bad_medoids;
pub mod compute_l;
pub mod evaluate;
pub mod find_dimensions;
pub mod initialization;
pub mod refinement;
