//! AssignPoints (Alg. 1 line 8, GPU Alg. 5): each point goes to the medoid
//! with the smallest Manhattan segmental distance within that medoid's
//! subspace.

use crate::dataset::DataMatrix;
use crate::distance_simd::{nearest_medoid, nearest_medoid8, LANES};
use crate::par::Executor;

/// Release-mode guard for the [`crate::distance::manhattan_segmental`]
/// invariant: an empty subspace would make every segmental distance
/// `0.0 / 0.0 = NaN`, which compares false against everything and silently
/// assigns every point to medoid 0 (or marks none as outliers). Checked
/// once per phase call — O(k), hoisted out of the per-point loop.
pub(crate) fn assert_subspaces_non_empty(subspaces: &[Vec<usize>], phase: &str) {
    for (i, dims) in subspaces.iter().enumerate() {
        assert!(
            !dims.is_empty(),
            "{phase}: empty subspace for medoid {i} — segmental distance undefined"
        );
    }
}

/// Labels a strip of gathered point rows with the nearest-medoid rule,
/// eight points per lane group, scalar on the `% 8` tail. `point_of` maps
/// a strip index to a data index.
fn assign_strip(
    data: &DataMatrix,
    medoid_rows: &[&[f32]],
    subspaces: &[Vec<usize>],
    point_of: impl Fn(usize) -> usize,
    out: &mut [i32],
) {
    let len = out.len();
    let mut i = 0;
    while i + LANES <= len {
        let rows: [&[f32]; LANES] = std::array::from_fn(|l| data.row(point_of(i + l)));
        out[i..i + LANES].copy_from_slice(&nearest_medoid8(rows, medoid_rows, subspaces));
        i += LANES;
    }
    while i < len {
        out[i] = nearest_medoid(data.row(point_of(i)), medoid_rows, subspaces);
        i += 1;
    }
}

/// Assigns every point to its closest medoid under the Manhattan segmental
/// distance in the medoid's own subspace `D_i`. Ties break toward the lower
/// medoid index. Returns per-point labels in `0..k`.
pub fn assign_points(
    data: &DataMatrix,
    medoids: &[usize],
    subspaces: &[Vec<usize>],
    exec: &Executor,
) -> Vec<i32> {
    debug_assert_eq!(medoids.len(), subspaces.len());
    assert_subspaces_non_empty(subspaces, "assign_points");
    let medoid_rows: Vec<&[f32]> = medoids.iter().map(|&m| data.row(m)).collect();
    let mut labels = vec![0i32; data.n()];
    exec.for_each_slice(&mut labels, |off, sub| {
        assign_strip(data, &medoid_rows, subspaces, |i| off + i, sub);
    });
    labels
}

/// Assigns only the points listed in `todo` (data indices), writing their
/// labels into `labels` in place and leaving every other entry untouched.
/// Per point this is exactly the [`assign_points`] rule — closest medoid by
/// Manhattan segmental distance in the medoid's own subspace, ties to the
/// lower medoid index — so seeding `labels` from a previous identical
/// assignment and re-assigning only new points reproduces the full
/// assignment bit for bit.
pub fn assign_subset(
    data: &DataMatrix,
    medoids: &[usize],
    subspaces: &[Vec<usize>],
    todo: &[usize],
    labels: &mut [i32],
    exec: &Executor,
) {
    debug_assert_eq!(medoids.len(), subspaces.len());
    debug_assert_eq!(labels.len(), data.n());
    assert_subspaces_non_empty(subspaces, "assign_subset");
    let medoid_rows: Vec<&[f32]> = medoids.iter().map(|&m| data.row(m)).collect();
    let mut out = vec![0i32; todo.len()];
    exec.for_each_slice(&mut out, |off, sub| {
        assign_strip(data, &medoid_rows, subspaces, |i| todo[off + i], sub);
    });
    for (&p, &lab) in todo.iter().zip(&out) {
        labels[p] = lab;
    }
}

/// Cluster sizes from a label array (ignores negative labels).
pub fn cluster_sizes(labels: &[i32], k: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; k];
    for &c in labels {
        if c >= 0 {
            sizes[c as usize] += 1;
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_by_subspace_distance_not_full_distance() {
        // Point 2 is far from medoid 0 in dim 1, but dim 1 is outside
        // medoid 0's subspace, so the point still lands in cluster 0.
        let data = DataMatrix::from_rows(&[
            vec![0.0, 0.0],   // medoid 0
            vec![10.0, 10.0], // medoid 1
            vec![0.5, 100.0], // near medoid 0 in dim 0 only
        ])
        .unwrap();
        let labels = assign_points(
            &data,
            &[0, 1],
            &[vec![0], vec![0, 1]],
            &Executor::Sequential,
        );
        assert_eq!(labels, vec![0, 1, 0]);
    }

    #[test]
    fn medoid_belongs_to_its_own_cluster() {
        let data =
            DataMatrix::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0], vec![9.0, 9.0]]).unwrap();
        let labels = assign_points(
            &data,
            &[0, 2],
            &[vec![0, 1], vec![0, 1]],
            &Executor::Sequential,
        );
        assert_eq!(labels[0], 0);
        assert_eq!(labels[2], 1);
    }

    #[test]
    fn ties_break_to_lower_medoid_index() {
        let data = DataMatrix::from_rows(&[
            vec![0.0],
            vec![2.0],
            vec![1.0], // equidistant from both medoids
        ])
        .unwrap();
        let labels = assign_points(&data, &[0, 1], &[vec![0], vec![0]], &Executor::Sequential);
        assert_eq!(labels[2], 0);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let rows: Vec<Vec<f32>> = (0..300)
            .map(|i| vec![(i % 23) as f32, (i % 7) as f32, (i % 3) as f32])
            .collect();
        let data = DataMatrix::from_rows(&rows).unwrap();
        let medoids = [0usize, 150, 299];
        let subs = [vec![0, 1], vec![1, 2], vec![0, 2]];
        let seq = assign_points(&data, &medoids, &subs, &Executor::Sequential);
        let par = assign_points(&data, &medoids, &subs, &Executor::Parallel { threads: 5 });
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "empty subspace")]
    fn empty_subspace_panics_in_every_profile() {
        // Regression: this used to be a debug_assert! inside
        // manhattan_segmental, so release builds silently produced NaN
        // distances and assigned everything to medoid 0. The guard is a
        // release-active assert!, so this test is meaningful under
        // `cargo test --release` too.
        let data = DataMatrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let _ = assign_points(&data, &[0, 1], &[vec![0], vec![]], &Executor::Sequential);
    }

    #[test]
    #[should_panic(expected = "empty subspace")]
    fn empty_subspace_panics_in_subset_assignment_too() {
        let data = DataMatrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let mut labels = vec![0, 0];
        assign_subset(
            &data,
            &[0],
            &[vec![]],
            &[1],
            &mut labels,
            &Executor::Sequential,
        );
    }

    #[test]
    fn cluster_sizes_ignore_outliers() {
        assert_eq!(cluster_sizes(&[0, 1, -1, 1, 0, 0], 2), vec![3, 2]);
    }

    #[test]
    fn seeded_subset_assignment_matches_full_assignment() {
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![(i % 17) as f32, (i % 5) as f32, (i % 9) as f32])
            .collect();
        let data = DataMatrix::from_rows(&rows).unwrap();
        let medoids = [3usize, 90, 170];
        let subs = [vec![0, 2], vec![1], vec![0, 1, 2]];
        let full = assign_points(&data, &medoids, &subs, &Executor::Sequential);
        // Seed half the labels from the full pass, recompute the rest.
        let mut labels = full.clone();
        let todo: Vec<usize> = (0..data.n()).filter(|p| p % 2 == 1).collect();
        for &p in &todo {
            labels[p] = -2; // poison; must be overwritten
        }
        assign_subset(
            &data,
            &medoids,
            &subs,
            &todo,
            &mut labels,
            &Executor::Parallel { threads: 3 },
        );
        assert_eq!(labels, full);
    }
}
