//! AssignPoints (Alg. 1 line 8, GPU Alg. 5): each point goes to the medoid
//! with the smallest Manhattan segmental distance within that medoid's
//! subspace.

use crate::dataset::DataMatrix;
use crate::distance::manhattan_segmental;
use crate::par::Executor;

/// Assigns every point to its closest medoid under the Manhattan segmental
/// distance in the medoid's own subspace `D_i`. Ties break toward the lower
/// medoid index. Returns per-point labels in `0..k`.
pub fn assign_points(
    data: &DataMatrix,
    medoids: &[usize],
    subspaces: &[Vec<usize>],
    exec: &Executor,
) -> Vec<i32> {
    debug_assert_eq!(medoids.len(), subspaces.len());
    let k = medoids.len();
    let mut labels = vec![0i32; data.n()];
    exec.for_each_slice(&mut labels, |off, sub| {
        for (idx, lab) in sub.iter_mut().enumerate() {
            let row = data.row(off + idx);
            let mut best = f64::INFINITY;
            let mut best_i = 0i32;
            for i in 0..k {
                let dist = manhattan_segmental(row, data.row(medoids[i]), &subspaces[i]);
                if dist < best {
                    best = dist;
                    best_i = i as i32;
                }
            }
            *lab = best_i;
        }
    });
    labels
}

/// Assigns only the points listed in `todo` (data indices), writing their
/// labels into `labels` in place and leaving every other entry untouched.
/// Per point this is exactly the [`assign_points`] rule — closest medoid by
/// Manhattan segmental distance in the medoid's own subspace, ties to the
/// lower medoid index — so seeding `labels` from a previous identical
/// assignment and re-assigning only new points reproduces the full
/// assignment bit for bit.
pub fn assign_subset(
    data: &DataMatrix,
    medoids: &[usize],
    subspaces: &[Vec<usize>],
    todo: &[usize],
    labels: &mut [i32],
    exec: &Executor,
) {
    debug_assert_eq!(medoids.len(), subspaces.len());
    debug_assert_eq!(labels.len(), data.n());
    let k = medoids.len();
    let mut out = vec![0i32; todo.len()];
    exec.for_each_slice(&mut out, |off, sub| {
        for (idx, lab) in sub.iter_mut().enumerate() {
            let row = data.row(todo[off + idx]);
            let mut best = f64::INFINITY;
            let mut best_i = 0i32;
            for i in 0..k {
                let dist = manhattan_segmental(row, data.row(medoids[i]), &subspaces[i]);
                if dist < best {
                    best = dist;
                    best_i = i as i32;
                }
            }
            *lab = best_i;
        }
    });
    for (&p, &lab) in todo.iter().zip(&out) {
        labels[p] = lab;
    }
}

/// Cluster sizes from a label array (ignores negative labels).
pub fn cluster_sizes(labels: &[i32], k: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; k];
    for &c in labels {
        if c >= 0 {
            sizes[c as usize] += 1;
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_by_subspace_distance_not_full_distance() {
        // Point 2 is far from medoid 0 in dim 1, but dim 1 is outside
        // medoid 0's subspace, so the point still lands in cluster 0.
        let data = DataMatrix::from_rows(&[
            vec![0.0, 0.0],   // medoid 0
            vec![10.0, 10.0], // medoid 1
            vec![0.5, 100.0], // near medoid 0 in dim 0 only
        ])
        .unwrap();
        let labels = assign_points(
            &data,
            &[0, 1],
            &[vec![0], vec![0, 1]],
            &Executor::Sequential,
        );
        assert_eq!(labels, vec![0, 1, 0]);
    }

    #[test]
    fn medoid_belongs_to_its_own_cluster() {
        let data =
            DataMatrix::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0], vec![9.0, 9.0]]).unwrap();
        let labels = assign_points(
            &data,
            &[0, 2],
            &[vec![0, 1], vec![0, 1]],
            &Executor::Sequential,
        );
        assert_eq!(labels[0], 0);
        assert_eq!(labels[2], 1);
    }

    #[test]
    fn ties_break_to_lower_medoid_index() {
        let data = DataMatrix::from_rows(&[
            vec![0.0],
            vec![2.0],
            vec![1.0], // equidistant from both medoids
        ])
        .unwrap();
        let labels = assign_points(&data, &[0, 1], &[vec![0], vec![0]], &Executor::Sequential);
        assert_eq!(labels[2], 0);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let rows: Vec<Vec<f32>> = (0..300)
            .map(|i| vec![(i % 23) as f32, (i % 7) as f32, (i % 3) as f32])
            .collect();
        let data = DataMatrix::from_rows(&rows).unwrap();
        let medoids = [0usize, 150, 299];
        let subs = [vec![0, 1], vec![1, 2], vec![0, 2]];
        let seq = assign_points(&data, &medoids, &subs, &Executor::Sequential);
        let par = assign_points(&data, &medoids, &subs, &Executor::Parallel { threads: 5 });
        assert_eq!(seq, par);
    }

    #[test]
    fn cluster_sizes_ignore_outliers() {
        assert_eq!(cluster_sizes(&[0, 1, -1, 1, 0, 0], 2), vec![3, 2]);
    }

    #[test]
    fn seeded_subset_assignment_matches_full_assignment() {
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![(i % 17) as f32, (i % 5) as f32, (i % 9) as f32])
            .collect();
        let data = DataMatrix::from_rows(&rows).unwrap();
        let medoids = [3usize, 90, 170];
        let subs = [vec![0, 2], vec![1], vec![0, 1, 2]];
        let full = assign_points(&data, &medoids, &subs, &Executor::Sequential);
        // Seed half the labels from the full pass, recompute the rest.
        let mut labels = full.clone();
        let todo: Vec<usize> = (0..data.n()).filter(|p| p % 2 == 1).collect();
        for &p in &todo {
            labels[p] = -2; // poison; must be overwritten
        }
        assign_subset(
            &data,
            &medoids,
            &subs,
            &todo,
            &mut labels,
            &Executor::Parallel { threads: 3 },
        );
        assert_eq!(labels, full);
    }
}
