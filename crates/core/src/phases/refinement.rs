//! Refinement phase (Alg. 1 lines 15–19): re-derive the subspaces from the
//! best clustering itself (instead of the spheres), re-assign, and mark
//! outliers.

use crate::dataset::DataMatrix;
use crate::distance::manhattan_segmental;
use crate::par::Executor;
use crate::phases::compute_l::reduce_h_to_x;
use crate::result::OUTLIER;

/// Computes the averaged per-dimension distance matrix `X` using the best
/// clusters as the point sets `L` (Alg. 1 line 16–17): for each cluster
/// member `p` of cluster `i`, accumulate `|p_j − m_{i,j}|`.
pub fn x_from_clusters(
    data: &DataMatrix,
    medoids: &[usize],
    labels: &[i32],
    exec: &Executor,
) -> (Vec<f64>, Vec<usize>) {
    let (n, d, k) = (data.n(), data.d(), medoids.len());
    debug_assert_eq!(labels.len(), n);
    let parts = exec.map_chunks(
        n,
        || (vec![0.0f64; k * d], vec![0usize; k]),
        |(h, lsz), range| {
            for p in range {
                let c = labels[p];
                if c < 0 {
                    continue;
                }
                let i = c as usize;
                lsz[i] += 1;
                let row = data.row(p);
                let m_row = data.row(medoids[i]);
                let h_row = &mut h[i * d..(i + 1) * d];
                for j in 0..d {
                    h_row[j] += ((row[j] - m_row[j]) as f64).abs();
                }
            }
        },
    );
    reduce_h_to_x(parts, k, d)
}

/// Outlier spheres: `Δ_i = min_{j≠i} ‖m_i − m_j‖₁^{D_i} / |D_i|` — the
/// segmental distance from each medoid to its nearest other medoid within
/// its own subspace (§2.1, refinement).
pub fn outlier_deltas(data: &DataMatrix, medoids: &[usize], subspaces: &[Vec<usize>]) -> Vec<f64> {
    let k = medoids.len();
    let mut deltas = vec![f64::INFINITY; k];
    for i in 0..k {
        for j in 0..k {
            if i != j {
                let dist =
                    manhattan_segmental(data.row(medoids[i]), data.row(medoids[j]), &subspaces[i]);
                if dist < deltas[i] {
                    deltas[i] = dist;
                }
            }
        }
    }
    deltas
}

/// Marks as [`OUTLIER`] every point that lies outside the `Δ_i` sphere of
/// *all* medoids (in each medoid's own subspace). Other labels pass
/// through unchanged.
pub fn remove_outliers(
    data: &DataMatrix,
    labels: &[i32],
    medoids: &[usize],
    subspaces: &[Vec<usize>],
    exec: &Executor,
) -> Vec<i32> {
    let k = medoids.len();
    let deltas = outlier_deltas(data, medoids, subspaces);
    let mut out = labels.to_vec();
    exec.for_each_slice(&mut out, |off, sub| {
        for (idx, lab) in sub.iter_mut().enumerate() {
            let row = data.row(off + idx);
            let inside_any = (0..k).any(|i| {
                manhattan_segmental(row, data.row(medoids[i]), &subspaces[i]) <= deltas[i]
            });
            if !inside_any {
                *lab = OUTLIER;
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> DataMatrix {
        DataMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![10.0, 0.0],
            vec![11.0, 0.0],
            vec![100.0, 100.0], // far outlier
        ])
        .unwrap()
    }

    #[test]
    fn x_from_clusters_uses_members_only() {
        let d = data();
        let labels = vec![0, 0, 1, 1, 1];
        let (x, sizes) = x_from_clusters(&d, &[0, 2], &labels, &Executor::Sequential);
        assert_eq!(sizes, vec![2, 3]);
        // cluster 0, dim 0: (|0-0| + |1-0|)/2 = 0.5
        assert!((x[0] - 0.5).abs() < 1e-12);
        // cluster 1, dim 0: (|10-10| + |11-10| + |100-10|)/3
        assert!((x[2] - 91.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn deltas_use_segmental_distance_in_own_subspace() {
        let d = data();
        let deltas = outlier_deltas(&d, &[0, 2], &[vec![0, 1], vec![0]]);
        // medoid 0 in dims {0,1}: (|0-10| + 0)/2 = 5
        assert_eq!(deltas[0], 5.0);
        // medoid 1 in dims {0}: |10-0|/1 = 10
        assert_eq!(deltas[1], 10.0);
    }

    #[test]
    fn far_point_becomes_outlier_and_near_points_stay() {
        let d = data();
        let labels = vec![0, 0, 1, 1, 1];
        let refined = remove_outliers(
            &d,
            &labels,
            &[0, 2],
            &[vec![0, 1], vec![0, 1]],
            &Executor::Sequential,
        );
        assert_eq!(refined[4], OUTLIER, "point at (100,100) must be outlier");
        assert_eq!(&refined[..4], &[0, 0, 1, 1]);
    }

    #[test]
    fn medoids_are_never_outliers() {
        let d = data();
        let labels = vec![0, 0, 1, 1, 1];
        let refined = remove_outliers(
            &d,
            &labels,
            &[0, 2],
            &[vec![0], vec![0]],
            &Executor::Sequential,
        );
        assert_eq!(refined[0], 0);
        assert_eq!(refined[2], 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let d = data();
        let labels = vec![0, 0, 1, 1, 1];
        let subs = [vec![0, 1], vec![0, 1]];
        let a = remove_outliers(&d, &labels, &[0, 2], &subs, &Executor::Sequential);
        let b = remove_outliers(
            &d,
            &labels,
            &[0, 2],
            &subs,
            &Executor::Parallel { threads: 3 },
        );
        assert_eq!(a, b);
    }
}
