//! Refinement phase (Alg. 1 lines 15–19): re-derive the subspaces from the
//! best clustering itself (instead of the spheres), re-assign, and mark
//! outliers.

use crate::dataset::DataMatrix;
use crate::distance::manhattan_segmental;
use crate::distance_simd::{fold_abs_diff, segmental8, LANES};
use crate::par::Executor;
use crate::phases::assign::assert_subspaces_non_empty;
use crate::phases::compute_l::reduce_h_to_x;
use crate::result::OUTLIER;

/// Computes the averaged per-dimension distance matrix `X` using the best
/// clusters as the point sets `L` (Alg. 1 line 16–17): for each cluster
/// member `p` of cluster `i`, accumulate `|p_j − m_{i,j}|`.
pub fn x_from_clusters(
    data: &DataMatrix,
    medoids: &[usize],
    labels: &[i32],
    exec: &Executor,
) -> (Vec<f64>, Vec<usize>) {
    let (n, d, k) = (data.n(), data.d(), medoids.len());
    debug_assert_eq!(labels.len(), n);
    let parts = exec.map_chunks(
        n,
        || (vec![0.0f64; k * d], vec![0usize; k]),
        |(h, lsz), range| {
            for p in range {
                let c = labels[p];
                if c < 0 {
                    continue;
                }
                let i = c as usize;
                lsz[i] += 1;
                // Unrolled over dimensions; per-j reduction order across
                // points is unchanged (each h[j] is its own chain).
                fold_abs_diff(
                    &mut h[i * d..(i + 1) * d],
                    data.row(p),
                    data.row(medoids[i]),
                );
            }
        },
    );
    reduce_h_to_x(parts, k, d)
}

/// Outlier spheres: `Δ_i = min_{j≠i} ‖m_i − m_j‖₁^{D_i} / |D_i|` — the
/// segmental distance from each medoid to its nearest other medoid within
/// its own subspace (§2.1, refinement).
pub fn outlier_deltas(data: &DataMatrix, medoids: &[usize], subspaces: &[Vec<usize>]) -> Vec<f64> {
    assert_subspaces_non_empty(subspaces, "outlier_deltas");
    let k = medoids.len();
    let mut deltas = vec![f64::INFINITY; k];
    for i in 0..k {
        for j in 0..k {
            if i != j {
                let dist =
                    manhattan_segmental(data.row(medoids[i]), data.row(medoids[j]), &subspaces[i]);
                if dist < deltas[i] {
                    deltas[i] = dist;
                }
            }
        }
    }
    deltas
}

/// Marks as [`OUTLIER`] every point that lies outside the `Δ_i` sphere of
/// *all* medoids (in each medoid's own subspace). Other labels pass
/// through unchanged.
pub fn remove_outliers(
    data: &DataMatrix,
    labels: &[i32],
    medoids: &[usize],
    subspaces: &[Vec<usize>],
    exec: &Executor,
) -> Vec<i32> {
    let k = medoids.len();
    let deltas = outlier_deltas(data, medoids, subspaces);
    let medoid_rows: Vec<&[f32]> = medoids.iter().map(|&m| data.row(m)).collect();
    let mut out = labels.to_vec();
    exec.for_each_slice(&mut out, |off, sub| {
        let len = sub.len();
        let mut idx = 0;
        // Lane groups: the `any` predicate is pure, so evaluating a
        // medoid's sphere for all eight lanes (instead of short-circuiting
        // per point) cannot change the outcome; the medoid loop still exits
        // as soon as every lane is inside some sphere.
        while idx + LANES <= len {
            let rows: [&[f32]; LANES] = std::array::from_fn(|l| data.row(off + idx + l));
            let mut inside = [false; LANES];
            for i in 0..k {
                let dist = segmental8(rows, medoid_rows[i], &subspaces[i]);
                for l in 0..LANES {
                    inside[l] |= dist[l] <= deltas[i];
                }
                if inside.iter().all(|&v| v) {
                    break;
                }
            }
            for l in 0..LANES {
                if !inside[l] {
                    sub[idx + l] = OUTLIER;
                }
            }
            idx += LANES;
        }
        while idx < len {
            let row = data.row(off + idx);
            let inside_any = (0..k)
                .any(|i| manhattan_segmental(row, medoid_rows[i], &subspaces[i]) <= deltas[i]);
            if !inside_any {
                sub[idx] = OUTLIER;
            }
            idx += 1;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> DataMatrix {
        DataMatrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![10.0, 0.0],
            vec![11.0, 0.0],
            vec![100.0, 100.0], // far outlier
        ])
        .unwrap()
    }

    #[test]
    fn x_from_clusters_uses_members_only() {
        let d = data();
        let labels = vec![0, 0, 1, 1, 1];
        let (x, sizes) = x_from_clusters(&d, &[0, 2], &labels, &Executor::Sequential);
        assert_eq!(sizes, vec![2, 3]);
        // cluster 0, dim 0: (|0-0| + |1-0|)/2 = 0.5
        assert!((x[0] - 0.5).abs() < 1e-12);
        // cluster 1, dim 0: (|10-10| + |11-10| + |100-10|)/3
        assert!((x[2] - 91.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn deltas_use_segmental_distance_in_own_subspace() {
        let d = data();
        let deltas = outlier_deltas(&d, &[0, 2], &[vec![0, 1], vec![0]]);
        // medoid 0 in dims {0,1}: (|0-10| + 0)/2 = 5
        assert_eq!(deltas[0], 5.0);
        // medoid 1 in dims {0}: |10-0|/1 = 10
        assert_eq!(deltas[1], 10.0);
    }

    #[test]
    fn far_point_becomes_outlier_and_near_points_stay() {
        let d = data();
        let labels = vec![0, 0, 1, 1, 1];
        let refined = remove_outliers(
            &d,
            &labels,
            &[0, 2],
            &[vec![0, 1], vec![0, 1]],
            &Executor::Sequential,
        );
        assert_eq!(refined[4], OUTLIER, "point at (100,100) must be outlier");
        assert_eq!(&refined[..4], &[0, 0, 1, 1]);
    }

    #[test]
    fn medoids_are_never_outliers() {
        let d = data();
        let labels = vec![0, 0, 1, 1, 1];
        let refined = remove_outliers(
            &d,
            &labels,
            &[0, 2],
            &[vec![0], vec![0]],
            &Executor::Sequential,
        );
        assert_eq!(refined[0], 0);
        assert_eq!(refined[2], 1);
    }

    #[test]
    #[should_panic(expected = "empty subspace")]
    fn empty_subspace_panics_in_outlier_removal() {
        // Release-active guard: previously NaN deltas would mark every
        // point an outlier without any signal in release builds.
        let d = data();
        let _ = remove_outliers(
            &d,
            &[0, 0, 1, 1, 1],
            &[0, 2],
            &[vec![0], vec![]],
            &Executor::Sequential,
        );
    }

    #[test]
    fn vectorized_outlier_scan_matches_scalar_rule_across_remainders() {
        // n = 13 exercises one full lane group + a 5-point tail.
        let rows: Vec<Vec<f32>> = (0..13)
            .map(|i| vec![(i % 7) as f32 * 3.0, (i % 5) as f32 * 2.0])
            .collect();
        let d = DataMatrix::from_rows(&rows).unwrap();
        let labels: Vec<i32> = (0..13).map(|i| i % 2).collect();
        let subs = [vec![0], vec![1]];
        let medoids = [0usize, 1];
        let got = remove_outliers(&d, &labels, &medoids, &subs, &Executor::Sequential);
        let deltas = outlier_deltas(&d, &medoids, &subs);
        for (p, &lab) in got.iter().enumerate() {
            let inside = (0..2)
                .any(|i| manhattan_segmental(d.row(p), d.row(medoids[i]), &subs[i]) <= deltas[i]);
            assert_eq!(lab, if inside { labels[p] } else { OUTLIER }, "point {p}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let d = data();
        let labels = vec![0, 0, 1, 1, 1];
        let subs = [vec![0, 1], vec![0, 1]];
        let a = remove_outliers(&d, &labels, &[0, 2], &subs, &Executor::Sequential);
        let b = remove_outliers(
            &d,
            &labels,
            &[0, 2],
            &subs,
            &Executor::Parallel { threads: 3 },
        );
        assert_eq!(a, b);
    }
}
