//! ComputeL and the baseline X computation (Alg. 1 line 6, GPU Alg. 3).
//!
//! The baseline recomputes, every iteration, the distance from every point
//! to every current medoid, derives the sphere radii `δ_i` (distance to the
//! nearest other medoid) and accumulates the per-dimension Manhattan sums
//! over each sphere `L_i` — the `O(n · k · d)` step FAST-PROCLUS attacks.

use crate::dataset::DataMatrix;
use crate::distance::euclidean;
use crate::distance_simd::{euclidean8, fold_abs_diff, LANES};
use crate::par::Executor;

/// Sphere radii: `δ_i = min_{j≠i} ‖m_i − m_j‖₂` (ComputeL, first step).
pub fn medoid_deltas(data: &DataMatrix, medoids: &[usize]) -> Vec<f32> {
    let k = medoids.len();
    let mut deltas = vec![f32::INFINITY; k];
    for i in 0..k {
        for j in 0..k {
            if i != j {
                let dist = euclidean(data.row(medoids[i]), data.row(medoids[j]));
                if dist < deltas[i] {
                    deltas[i] = dist;
                }
            }
        }
    }
    deltas
}

/// Baseline ComputeL + the `H`-summation half of FindDimensions in one data
/// pass: returns the averaged per-dimension distances `X` (row-major
/// `k × d`) and the sphere sizes `|L_i|`.
///
/// `X_{i,j} = (Σ_{p ∈ L_i} |p_j − m_{i,j}|) / |L_i|` where
/// `L_i = {p : ‖p − m_i‖₂ ≤ δ_i}`.
pub fn compute_x_baseline(
    data: &DataMatrix,
    medoids: &[usize],
    deltas: &[f32],
    exec: &Executor,
) -> (Vec<f64>, Vec<usize>) {
    let (n, d, k) = (data.n(), data.d(), medoids.len());
    let medoid_rows: Vec<&[f32]> = medoids.iter().map(|&m| data.row(m)).collect();
    let parts = exec.map_chunks(
        n,
        || (vec![0.0f64; k * d], vec![0usize; k]),
        |(h, lsz), range| {
            // Lane groups of eight points per medoid: each lane's distance
            // is its own chain, and for a fixed medoid the H folds still
            // happen in ascending point order, so `H`/`X` stay bitwise
            // equal to the scalar sweep.
            let (mut p, hi) = (range.start, range.end);
            while p + LANES <= hi {
                let rows: [&[f32]; LANES] = std::array::from_fn(|l| data.row(p + l));
                for i in 0..k {
                    let m_row = medoid_rows[i];
                    let dist = euclidean8(rows, m_row);
                    for l in 0..LANES {
                        if dist[l] <= deltas[i] {
                            lsz[i] += 1;
                            fold_abs_diff(&mut h[i * d..(i + 1) * d], rows[l], m_row);
                        }
                    }
                }
                p += LANES;
            }
            while p < hi {
                let row = data.row(p);
                for i in 0..k {
                    let m_row = medoid_rows[i];
                    if euclidean(row, m_row) <= deltas[i] {
                        lsz[i] += 1;
                        fold_abs_diff(&mut h[i * d..(i + 1) * d], row, m_row);
                    }
                }
                p += 1;
            }
        },
    );
    reduce_h_to_x(parts, k, d)
}

/// Reduces per-worker `(H, |L|)` partials (in chunk order) into the
/// averaged `X` matrix and the sizes. Shared with the refinement phase.
pub(crate) fn reduce_h_to_x(
    parts: Vec<(Vec<f64>, Vec<usize>)>,
    k: usize,
    d: usize,
) -> (Vec<f64>, Vec<usize>) {
    let mut h = vec![0.0f64; k * d];
    let mut lsz = vec![0usize; k];
    for (ph, pl) in parts {
        for (acc, v) in h.iter_mut().zip(&ph) {
            *acc += v;
        }
        for (acc, v) in lsz.iter_mut().zip(&pl) {
            *acc += v;
        }
    }
    for i in 0..k {
        if lsz[i] > 0 {
            let inv = 1.0 / lsz[i] as f64;
            for x in &mut h[i * d..(i + 1) * d] {
                *x *= inv;
            }
        }
    }
    (h, lsz)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> DataMatrix {
        // points at x = 0, 1, 2, 6, 7, 8 in 1-D
        DataMatrix::from_flat(vec![0.0, 1.0, 2.0, 6.0, 7.0, 8.0], 6, 1).unwrap()
    }

    #[test]
    fn deltas_are_nearest_other_medoid() {
        let data = line_data();
        let deltas = medoid_deltas(&data, &[0, 2, 5]); // x = 0, 2, 8
        assert_eq!(deltas, vec![2.0, 2.0, 6.0]);
    }

    #[test]
    fn baseline_x_counts_sphere_members() {
        let data = line_data();
        let medoids = [1usize, 4]; // x = 1 and x = 7, delta = 6 each
        let deltas = medoid_deltas(&data, &medoids);
        assert_eq!(deltas, vec![6.0, 6.0]);
        let (x, lsz) = compute_x_baseline(&data, &medoids, &deltas, &Executor::Sequential);
        // Sphere of medoid 0 (x=1, r=6): x in [-5, 7] → points {0,1,2,6,7},
        // sum of |x - 1| = 1+0+1+5+6 = 13, avg 13/5.
        assert_eq!(lsz, vec![5, 5]);
        assert!((x[0] - 13.0 / 5.0).abs() < 1e-12);
        // Sphere of medoid 1 (x=7, r=6): x in [1, 13] → {1,2,6,7,8}, sum 13.
        assert!((x[1] - 13.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn sphere_always_contains_the_medoid() {
        let data = line_data();
        let medoids = [0usize, 5];
        let deltas = medoid_deltas(&data, &medoids);
        let (_, lsz) = compute_x_baseline(&data, &medoids, &deltas, &Executor::Sequential);
        assert!(lsz.iter().all(|&s| s >= 1));
    }

    #[test]
    fn parallel_matches_sequential() {
        let rows: Vec<Vec<f32>> = (0..500)
            .map(|i| vec![(i % 17) as f32, (i % 5) as f32, i as f32 / 100.0])
            .collect();
        let data = DataMatrix::from_rows(&rows).unwrap();
        let medoids = [3usize, 77, 401];
        let deltas = medoid_deltas(&data, &medoids);
        let (xs, ls) = compute_x_baseline(&data, &medoids, &deltas, &Executor::Sequential);
        let (xp, lp) =
            compute_x_baseline(&data, &medoids, &deltas, &Executor::Parallel { threads: 4 });
        assert_eq!(ls, lp);
        for (a, b) in xs.iter().zip(&xp) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
