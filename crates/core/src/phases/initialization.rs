//! Initialization phase: random sampling of `Data'` and greedy selection of
//! the potential medoids `M` (Alg. 1 lines 2–3).

use crate::dataset::DataMatrix;
use crate::distance::euclidean;
use crate::distance_simd::{euclidean8, LANES};
use crate::par::Executor;
use crate::rng::ProclusRng;

/// Draws the random sample `Data'` of `size` distinct point indices.
pub fn sample_data_prime(rng: &mut ProclusRng, n: usize, size: usize) -> Vec<usize> {
    rng.sample_distinct(n, size.min(n))
}

/// Greedy farthest-point selection of `count` potential medoids from the
/// candidate indices (Alg. 1 line 3 / GPU Alg. 2).
///
/// The first medoid is drawn uniformly from the candidates (one RNG draw);
/// every further medoid is the candidate with the maximum distance to its
/// nearest already-selected medoid. Ties break toward the lower candidate
/// position, matching the GPU kernel's deterministic claim order.
pub fn greedy_select(
    data: &DataMatrix,
    candidates: &[usize],
    count: usize,
    rng: &mut ProclusRng,
    exec: &Executor,
) -> Vec<usize> {
    let s = candidates.len();
    assert!(count >= 1 && count <= s, "greedy: count {count} of {s}");
    let mut selected = Vec::with_capacity(count);
    let first = rng.below(s);
    selected.push(candidates[first]);

    // Distance from each candidate to its nearest selected medoid.
    let mut min_dist = vec![f32::INFINITY; s];
    let mut latest = candidates[first];

    for _ in 1..count {
        // Fold the latest pick into the min-distances (disjoint writes),
        // then take the argmax — the two kernels of GPU Alg. 2.
        let latest_row = data.row(latest);
        exec.for_each_slice(&mut min_dist, |off, sub| {
            let len = sub.len();
            let mut i = 0;
            while i + LANES <= len {
                let rows: [&[f32]; LANES] =
                    std::array::from_fn(|l| data.row(candidates[off + i + l]));
                let dist = euclidean8(rows, latest_row);
                for l in 0..LANES {
                    if dist[l] < sub[i + l] {
                        sub[i + l] = dist[l];
                    }
                }
                i += LANES;
            }
            while i < len {
                let dist = euclidean(data.row(candidates[off + i]), latest_row);
                if dist < sub[i] {
                    sub[i] = dist;
                }
                i += 1;
            }
        });
        let parts = exec.map_chunks(
            s,
            || (f32::NEG_INFINITY, usize::MAX),
            |best, range| {
                for c in range {
                    if min_dist[c] > best.0 {
                        *best = (min_dist[c], c);
                    }
                }
            },
        );
        let (_, argmax) = parts
            .into_iter()
            .fold((f32::NEG_INFINITY, usize::MAX), |acc, p| {
                if p.0 > acc.0 || (p.0 == acc.0 && p.1 < acc.1) {
                    p
                } else {
                    acc
                }
            });
        latest = candidates[argmax];
        selected.push(latest);
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_data() -> DataMatrix {
        // 5 points on a line: 0, 1, 2, 3, 10
        DataMatrix::from_flat(vec![0.0, 1.0, 2.0, 3.0, 10.0], 5, 1).unwrap()
    }

    #[test]
    fn sample_is_distinct_subset() {
        let mut rng = ProclusRng::new(1);
        let s = sample_data_prime(&mut rng, 100, 30);
        assert_eq!(s.len(), 30);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 30);
    }

    #[test]
    fn sample_clamps_to_n() {
        let mut rng = ProclusRng::new(1);
        assert_eq!(sample_data_prime(&mut rng, 10, 50).len(), 10);
    }

    #[test]
    fn greedy_spreads_points_apart() {
        let data = grid_data();
        let candidates: Vec<usize> = (0..5).collect();
        let mut rng = ProclusRng::new(3);
        let m = greedy_select(&data, &candidates, 3, &mut rng, &Executor::Sequential);
        // Whatever the random start, the isolated point 4 (value 10) and an
        // endpoint of the 0..3 run must both be selected.
        assert!(m.contains(&4), "far point must be chosen, got {m:?}");
        assert_eq!(m.len(), 3);
        let set: std::collections::HashSet<_> = m.iter().collect();
        assert_eq!(set.len(), 3, "selection must be distinct: {m:?}");
    }

    #[test]
    fn greedy_sequential_and_parallel_agree() {
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![(i as f32 * 37.0) % 101.0, (i as f32 * 17.0) % 89.0])
            .collect();
        let data = DataMatrix::from_rows(&rows).unwrap();
        let candidates: Vec<usize> = (0..200).collect();
        let seq = greedy_select(
            &data,
            &candidates,
            20,
            &mut ProclusRng::new(9),
            &Executor::Sequential,
        );
        let par = greedy_select(
            &data,
            &candidates,
            20,
            &mut ProclusRng::new(9),
            &Executor::Parallel { threads: 4 },
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn greedy_single_pick_uses_one_draw() {
        let data = grid_data();
        let mut a = ProclusRng::new(5);
        let mut b = ProclusRng::new(5);
        let _ = greedy_select(&data, &[0, 1, 2, 3, 4], 1, &mut a, &Executor::Sequential);
        let _ = b.below(5);
        // Both consumed exactly one draw; subsequent draws must agree.
        assert_eq!(a.below(1000), b.below(1000));
    }
}
