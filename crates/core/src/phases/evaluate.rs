//! EvaluateClusters (Alg. 1 line 9, Eqs. 1–2, GPU Alg. 6): the weighted
//! average Manhattan segmental distance from each point to its cluster's
//! *centroid* within the cluster's subspace.

use crate::dataset::DataMatrix;
use crate::distance_simd::fold_sum;
use crate::par::Executor;

/// Computes the clustering cost (Eq. 2):
///
/// ```text
/// cost = Σ_i |C_i| · w_i / n,
/// w_i  = Σ_{j ∈ D_i} V_{i,j} / |D_i|,
/// V_{i,j} = Σ_{p ∈ C_i} |p_j − µ_{i,j}| / |C_i|
/// ```
///
/// which simplifies to `Σ_i Σ_{j ∈ D_i} Σ_{p ∈ C_i} |p_j − µ_{i,j}| /
/// (|D_i| · n)` (Eq. 9) — the form the GPU kernel uses. Points with
/// negative labels (outliers) are excluded from both centroids and cost;
/// `n` is always the full dataset size, as in the paper. Empty clusters
/// contribute zero.
pub fn evaluate_clusters(
    data: &DataMatrix,
    labels: &[i32],
    subspaces: &[Vec<usize>],
    exec: &Executor,
) -> f64 {
    let (n, d, k) = (data.n(), data.d(), subspaces.len());
    debug_assert_eq!(labels.len(), n);

    // Pass 1: per-cluster sums for the centroids µ_i.
    let parts = exec.map_chunks(
        n,
        || (vec![0.0f64; k * d], vec![0usize; k]),
        |(sums, counts), range| {
            for p in range {
                let c = labels[p];
                if c < 0 {
                    continue;
                }
                let c = c as usize;
                counts[c] += 1;
                // Unrolled over dimensions; each sum[j] is an independent
                // chain folded in point order, exactly like the scalar loop.
                fold_sum(&mut sums[c * d..(c + 1) * d], data.row(p));
            }
        },
    );
    let mut mu = vec![0.0f64; k * d];
    let mut counts = vec![0usize; k];
    for (ps, pc) in parts {
        for (acc, v) in mu.iter_mut().zip(&ps) {
            *acc += v;
        }
        for (acc, v) in counts.iter_mut().zip(&pc) {
            *acc += v;
        }
    }
    for i in 0..k {
        if counts[i] > 0 {
            let inv = 1.0 / counts[i] as f64;
            for v in &mut mu[i * d..(i + 1) * d] {
                *v *= inv;
            }
        }
    }

    // Pass 2: accumulate Eq. 9. This pass stays point-at-a-time on
    // purpose: the worker's `acc` is ONE f64 chain folded in ascending
    // point order, so any cross-point reassociation (lane partials, grouped
    // clusters) would change the cost at ulp level and with it best-cost
    // decisions. Per-point chains are already independent, which is where
    // the ILP comes from; see DESIGN.md §14.
    let parts = exec.map_chunks(
        n,
        || 0.0f64,
        |acc, range| {
            for p in range {
                let c = labels[p];
                if c < 0 {
                    continue;
                }
                let c = c as usize;
                let dims = &subspaces[c];
                let row = data.row(p);
                let m = &mu[c * d..(c + 1) * d];
                let mut s = 0.0f64;
                for &j in dims {
                    s += (row[j] as f64 - m[j]).abs();
                }
                *acc += s / dims.len() as f64;
            }
        },
    );
    parts.into_iter().sum::<f64>() / n as f64
}

/// Centroids of the labeled clusters (row-major `k × d`), exposed for tests
/// and the GPU cross-checks. Empty clusters yield zero rows.
pub fn centroids(data: &DataMatrix, labels: &[i32], k: usize) -> Vec<f64> {
    let d = data.d();
    let mut mu = vec![0.0f64; k * d];
    let mut counts = vec![0usize; k];
    for (p, &c) in labels.iter().enumerate() {
        if c < 0 {
            continue;
        }
        let c = c as usize;
        counts[c] += 1;
        let row = data.row(p);
        for j in 0..d {
            mu[c * d + j] += row[j] as f64;
        }
    }
    for i in 0..k {
        if counts[i] > 0 {
            let inv = 1.0 / counts[i] as f64;
            for v in &mut mu[i * d..(i + 1) * d] {
                *v *= inv;
            }
        }
    }
    mu
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_matches_hand_computation() {
        // Cluster 0: points 0,1 in dim {0}; centroid 0.5 → V = 0.5, w = 0.5.
        // Cluster 1: points 2,3 in dim {1}; centroid 5.5 → V = 0.5, w = 0.5.
        // cost = (2*0.5 + 2*0.5) / 4 = 0.5
        let data = DataMatrix::from_rows(&[
            vec![0.0, 9.0],
            vec![1.0, 3.0],
            vec![7.0, 5.0],
            vec![2.0, 6.0],
        ])
        .unwrap();
        let labels = vec![0, 0, 1, 1];
        let cost = evaluate_clusters(&data, &labels, &[vec![0], vec![1]], &Executor::Sequential);
        assert!((cost - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_clusters_cost_zero() {
        let data = DataMatrix::from_rows(&[
            vec![1.0, 50.0],
            vec![1.0, -3.0],
            vec![8.0, 2.0],
            vec![8.0, 11.0],
        ])
        .unwrap();
        let cost = evaluate_clusters(
            &data,
            &[0, 0, 1, 1],
            &[vec![0], vec![0]],
            &Executor::Sequential,
        );
        assert_eq!(cost, 0.0);
    }

    #[test]
    fn outliers_are_excluded_but_n_is_total() {
        let data = DataMatrix::from_rows(&[
            vec![0.0],
            vec![2.0],
            vec![100.0], // outlier
        ])
        .unwrap();
        let cost = evaluate_clusters(&data, &[0, 0, -1], &[vec![0]], &Executor::Sequential);
        // centroid = 1, V = 1, contribution 2·1, divided by n = 3.
        assert!((cost - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_contributes_nothing() {
        // Both points in cluster 0 (centroid 2, V = 2, w = 2); cluster 1 is
        // empty and must contribute nothing: cost = 2·2 / 2 = 2.
        let data = DataMatrix::from_rows(&[vec![0.0], vec![4.0]]).unwrap();
        let cost = evaluate_clusters(&data, &[0, 0], &[vec![0], vec![0]], &Executor::Sequential);
        assert!((cost - 2.0).abs() < 1e-12, "cost = {cost}");
    }

    #[test]
    fn parallel_matches_sequential_closely() {
        let rows: Vec<Vec<f32>> = (0..1000)
            .map(|i| vec![(i % 31) as f32, (i % 13) as f32])
            .collect();
        let data = DataMatrix::from_rows(&rows).unwrap();
        let labels: Vec<i32> = (0..1000).map(|i| i % 3).collect();
        let subs = [vec![0], vec![1], vec![0, 1]];
        let a = evaluate_clusters(&data, &labels, &subs, &Executor::Sequential);
        let b = evaluate_clusters(&data, &labels, &subs, &Executor::Parallel { threads: 7 });
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn centroids_average_members() {
        let data = DataMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mu = centroids(&data, &[0, 0], 1);
        assert_eq!(mu, vec![2.0, 3.0]);
    }
}
