//! FAST*-PROCLUS (§3.2): the space-reduced variant. Instead of caching
//! `Dist`/`H` for all `B·k` potential medoids (`O(B·k·n)` space), only the
//! `k` rows of the *current* medoids are kept (`O(k·n)`), and a row is
//! recomputed from scratch whenever its slot's medoid changes (the `MBad`
//! replacements). Because bad-medoid replacement preserves slot positions
//! (see [`crate::phases::bad_medoids::replace_bad_medoids`]), unchanged
//! slots keep their caches from iteration `t − 1`.

use proclus_telemetry::{counters, Recorder};

use crate::backend::CpuBackend;
use crate::cancel::CancelToken;
use crate::dataset::DataMatrix;
use crate::distance_simd::debug_assert_finite;
use crate::driver::{run_full, XEngine};
use crate::error::Result;
use crate::fast::{compute_dist_rows, update_h_row};
use crate::par::Executor;
use crate::params::Params;
use crate::result::Clustering;

/// The FAST*-PROCLUS `X` engine: per-slot caches of size `k`.
pub(crate) struct FastStarEngine {
    n: usize,
    d: usize,
    /// The medoid (as an index into `M`) each slot's cache belongs to.
    prev_mcur: Vec<Option<usize>>,
    dist: Vec<f32>,       // k × n
    h: Vec<f64>,          // k × d
    prev_delta: Vec<f32>, // per slot
    lsize: Vec<usize>,    // per slot
}

impl FastStarEngine {
    pub(crate) fn new(data: &DataMatrix, k: usize) -> Self {
        Self {
            n: data.n(),
            d: data.d(),
            prev_mcur: vec![None; k],
            dist: vec![0.0; k * data.n()],
            h: vec![0.0; k * data.d()],
            prev_delta: vec![-1.0; k],
            lsize: vec![0; k],
        }
    }

    /// Logical bytes held: `k·n` distances + `k·d` sums — a factor `B`
    /// smaller than FAST's cache, the point of the variant.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn bytes(&self) -> usize {
        self.dist.len() * 4 + self.h.len() * 8 + self.prev_delta.len() * (4 + 8)
    }
}

impl XEngine for FastStarEngine {
    fn x_matrix(
        &mut self,
        data: &DataMatrix,
        m_data: &[usize],
        mcur: &[usize],
        exec: &Executor,
        rec: &dyn Recorder,
    ) -> (Vec<f64>, Vec<usize>) {
        let k = mcur.len();
        let (n, d) = (self.n, self.d);
        let medoids: Vec<usize> = mcur.iter().map(|&mi| m_data[mi]).collect();

        // Reset the slots whose medoid changed (the i ∈ MBad of §3.2):
        // recompute the distance row and clear δ', |L|, H. A surviving slot
        // is a cache hit; a reset slot costs n fresh distances. All reset
        // rows are recomputed in one cache-blocked batch.
        let mut reset = vec![false; k];
        for i in 0..k {
            if self.prev_mcur[i] != Some(mcur[i]) {
                self.prev_mcur[i] = Some(mcur[i]);
                self.prev_delta[i] = -1.0;
                self.lsize[i] = 0;
                self.h[i * d..(i + 1) * d].fill(0.0);
                reset[i] = true;
                rec.add(counters::DIST_CACHE_MISSES, 1);
                rec.add(counters::DISTANCES_COMPUTED, n as u64);
            } else {
                rec.add(counters::DIST_CACHE_HITS, 1);
            }
        }
        if reset.iter().any(|&r| r) {
            let m_rows: Vec<&[f32]> = (0..k)
                .filter(|&i| reset[i])
                .map(|i| data.row(medoids[i]))
                .collect();
            let mut outs: Vec<&mut [f32]> = self
                .dist
                .chunks_mut(n)
                .enumerate()
                .filter(|(i, _)| reset[*i])
                .map(|(_, row)| row)
                .collect();
            compute_dist_rows(data, &m_rows, &mut outs, exec);
        }

        // δ_i from the slot rows, then the ΔL update per slot.
        let mut x = vec![0.0f64; k * d];
        let mut lsz = vec![0usize; k];
        for i in 0..k {
            debug_assert_finite(&self.dist[i * n..(i + 1) * n], "FastStarEngine δ-scan");
            let mut delta = f32::INFINITY;
            #[allow(clippy::needless_range_loop)]
            for j in 0..k {
                if i != j {
                    let dist = self.dist[i * n + medoids[j]];
                    if dist < delta {
                        delta = dist;
                    }
                }
            }
            let m_row: Vec<f32> = data.row(medoids[i]).to_vec();
            let (dist, h) = (&self.dist, &mut self.h);
            let dist_row = &dist[i * n..(i + 1) * n];
            let h_row = &mut h[i * d..(i + 1) * d];
            let mut lsize = self.lsize[i];
            let l_before = lsize;
            update_h_row(
                data,
                dist_row,
                &m_row,
                self.prev_delta[i],
                delta,
                h_row,
                &mut lsize,
                exec,
            );
            self.prev_delta[i] = delta;
            self.lsize[i] = lsize;
            rec.add(counters::DELTA_L_POINTS, l_before.abs_diff(lsize) as u64);
            lsz[i] = lsize;
            if lsize > 0 {
                for j in 0..d {
                    x[i * d + j] = h_row[j] / lsize as f64;
                }
            }
        }
        (x, lsz)
    }
}

pub(crate) fn run_fast_star(
    data: &DataMatrix,
    params: &Params,
    exec: &Executor,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> Result<Clustering> {
    params.validate(data)?;
    let mut backend =
        CpuBackend::with_engine(data, *exec, Box::new(FastStarEngine::new(data, params.k)));
    run_full(&mut backend, params, rec, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::run_baseline;
    use crate::fast::{run_fast, DistCache};

    fn run_seq(
        f: impl Fn(&DataMatrix, &Params, &Executor, &dyn Recorder, &CancelToken) -> Result<Clustering>,
        data: &DataMatrix,
        params: &Params,
        threads: usize,
    ) -> Result<Clustering> {
        let exec = if threads > 1 {
            Executor::Parallel { threads }
        } else {
            Executor::Sequential
        };
        f(
            data,
            params,
            &exec,
            &proclus_telemetry::NullRecorder,
            &CancelToken::new(),
        )
    }

    fn proclus(data: &DataMatrix, params: &Params) -> Result<Clustering> {
        run_seq(run_baseline, data, params, 1)
    }

    fn fast_proclus(data: &DataMatrix, params: &Params) -> Result<Clustering> {
        run_seq(run_fast, data, params, 1)
    }

    fn fast_star_proclus(data: &DataMatrix, params: &Params) -> Result<Clustering> {
        run_seq(run_fast_star, data, params, 1)
    }

    fn fast_star_proclus_par(
        data: &DataMatrix,
        params: &Params,
        threads: usize,
    ) -> Result<Clustering> {
        run_seq(run_fast_star, data, params, threads)
    }

    fn blob_data(n: usize) -> DataMatrix {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let c = (i % 4) as f32 * 25.0;
                vec![
                    c + ((i * 3) % 13) as f32 * 0.1,
                    c + ((i * 5) % 11) as f32 * 0.1,
                    ((i * 7) % 100) as f32,
                ]
            })
            .collect();
        DataMatrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn fast_star_equals_baseline_and_fast_seed_for_seed() {
        let data = blob_data(400);
        let params = Params::new(4, 2).with_a(25).with_b(5).with_seed(19);
        let base = proclus(&data, &params).unwrap();
        let fast = fast_proclus(&data, &params).unwrap();
        let star = fast_star_proclus(&data, &params).unwrap();
        assert_eq!(base.medoids, star.medoids);
        assert_eq!(base.labels, star.labels);
        assert_eq!(fast.subspaces, star.subspaces);
        assert!((base.cost - star.cost).abs() < 1e-9);
    }

    #[test]
    fn fast_star_par_equals_seq() {
        let data = blob_data(400);
        let params = Params::new(3, 2).with_a(25).with_b(5).with_seed(23);
        let seq = fast_star_proclus(&data, &params).unwrap();
        let par = fast_star_proclus_par(&data, &params, 4).unwrap();
        assert_eq!(seq.medoids, par.medoids);
        assert_eq!(seq.labels, par.labels);
    }

    #[test]
    fn space_is_a_factor_b_smaller_than_fast() {
        let data = blob_data(500);
        let k = 4;
        let b = 5;
        let star = FastStarEngine::new(&data, k);
        // Simulate a fully-populated FAST cache: B·k rows.
        let mut cache = DistCache::new(data.n(), data.d());
        for m in 0..k * b {
            cache.ensure_row(&data, m * 7, &Executor::Sequential);
        }
        let ratio = cache.bytes() as f64 / star.bytes() as f64;
        assert!(
            (ratio - b as f64).abs() < 0.5,
            "expected ~{b}x space ratio, got {ratio:.2}"
        );
    }

    #[test]
    fn slot_reuse_survives_unchanged_medoids() {
        // Drive the engine manually: same mcur twice must not reset slots
        // (prev_delta persists), while a changed slot resets.
        let data = blob_data(200);
        let exec = Executor::Sequential;
        let m_data: Vec<usize> = (0..20).map(|i| i * 10).collect();
        let rec = proclus_telemetry::NullRecorder;
        let mut engine = FastStarEngine::new(&data, 3);
        let mcur = vec![1usize, 5, 9];
        let _ = engine.x_matrix(&data, &m_data, &mcur, &exec, &rec);
        let deltas_after_first = engine.prev_delta.clone();
        assert!(deltas_after_first.iter().any(|&d| d > 0.0));
        let _ = engine.x_matrix(&data, &m_data, &mcur, &exec, &rec);
        assert_eq!(engine.prev_delta, deltas_after_first);

        let mcur2 = vec![1usize, 7, 9]; // slot 1 replaced
        let _ = engine.x_matrix(&data, &m_data, &mcur2, &exec, &rec);
        assert_eq!(engine.prev_mcur[1], Some(7));
    }
}
