//! Explicitly vectorized, cache-blocked forms of the [`crate::distance`]
//! kernels. MSRV-safe and dependency-free: eight-lane manual unrolling over
//! *independent* accumulators, which the auto-vectorizer lowers to packed
//! f32/f64 arithmetic (and which buys 8-way ILP even where it does not).
//!
//! # The bitwise-identity contract
//!
//! Every kernel here must return **bit-for-bit** the values of its scalar
//! counterpart in [`crate::distance`] — the sharded-equivalence and stream
//! exactness suites pin clusterings across backends, and any ulp of drift
//! would change medoid decisions. Floating-point addition is not
//! associative, so the one legal vectorization is *across independent
//! accumulator chains, never within one*:
//!
//! * **Distance rows** ([`euclidean8`], [`segmental8`]): lanes are eight
//!   *points*; each lane owns one `f64` accumulator and walks dimensions in
//!   the same ascending order as the scalar loop. No chain is reassociated.
//! * **`H` folds** ([`fold_abs_diff`]): lanes are eight *dimensions*; each
//!   `h[j]` is its own chain, and callers fold points in the same order as
//!   the scalar code.
//! * **Remainders**: the `len % 8` tail goes through the scalar kernel
//!   itself, so there is no second arithmetic to keep in sync.
//!
//! One carve-out: **NaN payload bits are out of contract.** When two NaNs
//! meet in an add, x86 propagates the first source operand — but IEEE
//! leaves the choice unspecified and LLVM freely commutes `fadd`, so even
//! two compilations of the *scalar* kernel can disagree on which payload
//! survives. What is pinned instead: every non-NaN result is
//! bitwise-identical, and NaN-ness itself propagates identically (a NaN
//! result on one path is a NaN result on every path — which is all the
//! debug sentinel and the `dist < delta` guards depend on).
//!
//! Subtraction happens in `f32` before widening — see the header of
//! [`crate::distance`] for the pinned precision contract shared with the
//! simulated-GPU kernels.
//!
//! # Cache blocking
//!
//! [`dist_rows_strip`] computes a *batch* of `Dist` rows over one
//! contiguous point strip, tiling points so each tile (~[`TILE_BYTES`] of
//! the data matrix) is read from memory once and reused for every medoid
//! row — instead of streaming the full matrix once per row. The parallel
//! driver splits columns across workers with
//! [`crate::par::Executor::for_each_strips`]. DESIGN.md §14 documents the
//! layout.
//!
//! # The x86-64 AVX fast path
//!
//! On x86-64 the strip kernels dispatch at runtime
//! (`is_x86_feature_detected!`) to explicit AVX intrinsics in [`x86`]:
//! each lane group of eight rows is transposed once into an L1-resident
//! j-major scratch (8×8 register transposes), after which every medoid
//! row streams over *contiguous* lanes — packed subtract in f32, widen to
//! f64, square and accumulate with **separate** `mul`/`add` instructions.
//! FMA is deliberately never used: contracting `acc + diff·diff` into one
//! rounding would break bitwise identity with the scalar kernel. The
//! portable eight-accumulator forms below stay the reference (and the
//! only path on other architectures); the dispatch is invisible to
//! callers and to results.

use crate::distance::{euclidean, manhattan_segmental};

/// Lane width of the unrolled kernels: eight independent accumulators
/// (2 × AVX2 `f64x4`, or 4 × SSE2 `f64x2`).
pub const LANES: usize = 8;

/// Target size of one cache-blocked tile of the point strip, in bytes.
/// 32 KiB keeps a tile resident in a typical L1d while the medoid rows
/// stream over it.
pub const TILE_BYTES: usize = 32 * 1024;

/// Points per cache tile for dimensionality `d`: the largest multiple of
/// [`LANES`] whose `f32` rows fit [`TILE_BYTES`], and at least one lane
/// group.
#[inline]
pub fn tile_points(d: usize) -> usize {
    let per_point = 4 * d.max(1);
    ((TILE_BYTES / per_point) / LANES * LANES).max(LANES)
}

/// Euclidean distances from eight point rows to one medoid row — the
/// vectorized body of a `Dist` row (GPU Alg. 3 lines 1–3). Lane `l` is
/// bitwise-identical to `distance::euclidean(rows[l], m)`: one `f64`
/// accumulator per lane, dimensions in ascending order.
#[inline]
pub fn euclidean8(rows: [&[f32]; LANES], m: &[f32]) -> [f32; LANES] {
    let d = m.len();
    // Pin every lane to length `d` so the inner indexing is bounds-free.
    let rows = rows.map(|r| &r[..d]);
    let mut acc = [0.0f64; LANES];
    for j in 0..d {
        let mj = m[j];
        for l in 0..LANES {
            let diff = (rows[l][j] - mj) as f64;
            acc[l] += diff * diff;
        }
    }
    acc.map(|a| a.sqrt() as f32)
}

/// Manhattan segmental distances from eight point rows to one medoid row
/// in subspace `dims`. Lane `l` is bitwise-identical to
/// `distance::manhattan_segmental(rows[l], m, dims)` (same ascending `dims`
/// walk, same final division). `dims` must be non-empty.
#[inline]
pub fn segmental8(rows: [&[f32]; LANES], m: &[f32], dims: &[usize]) -> [f64; LANES] {
    debug_assert!(!dims.is_empty());
    let mut acc = [0.0f64; LANES];
    for &j in dims {
        let mj = m[j];
        for l in 0..LANES {
            acc[l] += ((rows[l][j] - mj) as f64).abs();
        }
    }
    acc.map(|a| a / dims.len() as f64)
}

/// Folds one point into per-dimension Manhattan sums:
/// `h[j] += |row[j] − m[j]|`, unrolled [`LANES`] dimensions at a time.
/// Each `h[j]` is an independent chain, so the unroll preserves the scalar
/// reduction order exactly; callers must fold points in scalar order.
#[inline]
pub fn fold_abs_diff(h: &mut [f64], row: &[f32], m: &[f32]) {
    let d = h.len();
    let row = &row[..d];
    let m = &m[..d];
    let mut j = 0;
    while j + LANES <= d {
        for l in 0..LANES {
            h[j + l] += ((row[j + l] - m[j + l]) as f64).abs();
        }
        j += LANES;
    }
    while j < d {
        h[j] += ((row[j] - m[j]) as f64).abs();
        j += 1;
    }
}

/// Folds one point into per-dimension sums `s[j] += row[j]` (centroid
/// pass 1 of EvaluateClusters), unrolled like [`fold_abs_diff`].
#[inline]
pub fn fold_sum(s: &mut [f64], row: &[f32]) {
    let d = s.len();
    let row = &row[..d];
    let mut j = 0;
    while j + LANES <= d {
        for l in 0..LANES {
            s[j + l] += row[j + l] as f64;
        }
        j += LANES;
    }
    while j < d {
        s[j] += row[j] as f64;
        j += 1;
    }
}

/// Borrows eight consecutive rows (starting at row `i`) of a contiguous
/// row-major strip.
#[inline]
fn lanes_at(points: &[f32], d: usize, i: usize) -> [&[f32]; LANES] {
    std::array::from_fn(|l| &points[(i + l) * d..(i + l + 1) * d])
}

/// Fills `out[i] = ‖pointᵢ − m‖₂` over a contiguous row-major strip of
/// `out.len()` points: the AVX transpose kernel where available (see the
/// module docs), otherwise [`euclidean8`] on full lane groups with the
/// scalar kernel on the `% 8` tail. Bitwise-identical either way.
pub fn euclidean_strip(points: &[f32], d: usize, m: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if x86::avx_available() {
        // Safety: the AVX feature was just detected at runtime.
        unsafe { x86::euclidean_strip(points, d, m, out) };
        return;
    }
    euclidean_strip_portable(points, d, m, out);
}

/// The dependency-free reference form of [`euclidean_strip`] — also the
/// only path off x86-64.
pub fn euclidean_strip_portable(points: &[f32], d: usize, m: &[f32], out: &mut [f32]) {
    let n = out.len();
    debug_assert_eq!(points.len(), n * d);
    let mut i = 0;
    while i + LANES <= n {
        let dist = euclidean8(lanes_at(points, d, i), m);
        out[i..i + LANES].copy_from_slice(&dist);
        i += LANES;
    }
    while i < n {
        out[i] = euclidean(&points[i * d..(i + 1) * d], m);
        i += 1;
    }
}

/// Cache-blocked batch of `Dist` rows: `outs[r][i] = ‖pointᵢ − m_rows[r]‖₂`
/// over one contiguous point strip. On the AVX path each lane group is
/// transposed once and reused for every medoid row; the portable path
/// processes points in [`tile_points`]-sized tiles with the medoid loop
/// *inside* the tile loop, so each data tile is read from memory once and
/// reused for every row. Bitwise-identical either way.
pub fn dist_rows_strip(points: &[f32], d: usize, m_rows: &[&[f32]], outs: &mut [&mut [f32]]) {
    debug_assert_eq!(m_rows.len(), outs.len());
    let n = outs.first().map(|o| o.len()).unwrap_or(0);
    debug_assert!(outs.iter().all(|o| o.len() == n));
    debug_assert_eq!(points.len(), n * d);
    #[cfg(target_arch = "x86_64")]
    if x86::avx_available() {
        // Safety: the AVX feature was just detected at runtime.
        unsafe { x86::dist_rows_strip(points, d, m_rows, outs) };
        return;
    }
    let tile = tile_points(d);
    let mut t0 = 0;
    while t0 < n {
        let t1 = (t0 + tile).min(n);
        for (m, out) in m_rows.iter().zip(outs.iter_mut()) {
            euclidean_strip_portable(&points[t0 * d..t1 * d], d, m, &mut out[t0..t1]);
        }
        t0 = t1;
    }
}

/// Explicit AVX forms of the strip kernels. Runtime-dispatched — the
/// crate still builds for plain x86-64 and every other architecture.
///
/// Bitwise identity with the scalar kernel is load-bearing (see the
/// module docs): subtraction stays packed *f32* (`vsubps`), widening is
/// `vcvtps2pd`, and the square-accumulate is a separate `vmulpd` +
/// `vaddpd` pair — never an FMA, which would fuse the two roundings the
/// scalar code performs. `vsqrtpd`/`vcvtpd2ps` are IEEE
/// correctly-rounded, matching `f64::sqrt` and `as f32` lane for lane
/// (NaNs from non-finite inputs propagate identically).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{euclidean, LANES};
    use std::arch::x86_64::*;

    /// One runtime check per strip call — `is_x86_feature_detected!`
    /// caches in an atomic, so this is a relaxed load after the first.
    #[inline]
    pub fn avx_available() -> bool {
        is_x86_feature_detected!("avx")
    }

    /// Transposes a contiguous 8×`d` row-major block into j-major order:
    /// `scratch[j*8 + l] = block[l*d + j]`. Full 8-dim chunks go through
    /// an in-register 8×8 transpose (unpack / shuffle / permute2f128);
    /// the `d % 8` tail is copied scalar.
    ///
    /// Safety: caller detected AVX; `block` must be valid for `8*d`
    /// reads and `scratch` at least `8*d` long.
    #[target_feature(enable = "avx")]
    unsafe fn transpose8(block: *const f32, d: usize, scratch: &mut [f32]) {
        debug_assert!(scratch.len() >= LANES * d);
        let mut j = 0;
        while j + 8 <= d {
            let r = |l: usize| _mm256_loadu_ps(block.add(l * d + j));
            let (r0, r1, r2, r3) = (r(0), r(1), r(2), r(3));
            let (r4, r5, r6, r7) = (r(4), r(5), r(6), r(7));
            let t0 = _mm256_unpacklo_ps(r0, r1);
            let t1 = _mm256_unpackhi_ps(r0, r1);
            let t2 = _mm256_unpacklo_ps(r2, r3);
            let t3 = _mm256_unpackhi_ps(r2, r3);
            let t4 = _mm256_unpacklo_ps(r4, r5);
            let t5 = _mm256_unpackhi_ps(r4, r5);
            let t6 = _mm256_unpacklo_ps(r6, r7);
            let t7 = _mm256_unpackhi_ps(r6, r7);
            let s0 = _mm256_shuffle_ps(t0, t2, 0b01_00_01_00);
            let s1 = _mm256_shuffle_ps(t0, t2, 0b11_10_11_10);
            let s2 = _mm256_shuffle_ps(t1, t3, 0b01_00_01_00);
            let s3 = _mm256_shuffle_ps(t1, t3, 0b11_10_11_10);
            let s4 = _mm256_shuffle_ps(t4, t6, 0b01_00_01_00);
            let s5 = _mm256_shuffle_ps(t4, t6, 0b11_10_11_10);
            let s6 = _mm256_shuffle_ps(t5, t7, 0b01_00_01_00);
            let s7 = _mm256_shuffle_ps(t5, t7, 0b11_10_11_10);
            let outp = scratch.as_mut_ptr().add(j * LANES);
            _mm256_storeu_ps(outp, _mm256_permute2f128_ps(s0, s4, 0x20));
            _mm256_storeu_ps(outp.add(8), _mm256_permute2f128_ps(s1, s5, 0x20));
            _mm256_storeu_ps(outp.add(16), _mm256_permute2f128_ps(s2, s6, 0x20));
            _mm256_storeu_ps(outp.add(24), _mm256_permute2f128_ps(s3, s7, 0x20));
            _mm256_storeu_ps(outp.add(32), _mm256_permute2f128_ps(s0, s4, 0x31));
            _mm256_storeu_ps(outp.add(40), _mm256_permute2f128_ps(s1, s5, 0x31));
            _mm256_storeu_ps(outp.add(48), _mm256_permute2f128_ps(s2, s6, 0x31));
            _mm256_storeu_ps(outp.add(56), _mm256_permute2f128_ps(s3, s7, 0x31));
            j += 8;
        }
        while j < d {
            for l in 0..LANES {
                *scratch.get_unchecked_mut(j * LANES + l) = *block.add(l * d + j);
            }
            j += 1;
        }
    }

    /// Eight euclidean distances from a j-major lane scratch to one
    /// medoid row. Per lane, operation for operation the scalar kernel:
    /// f32 subtract, widen, separate multiply and add in f64, IEEE sqrt.
    ///
    /// Safety: caller detected AVX; `scratch` holds `8*d` lanes.
    #[target_feature(enable = "avx")]
    unsafe fn accumulate8(scratch: &[f32], d: usize, m: &[f32]) -> [f32; LANES] {
        debug_assert!(scratch.len() >= LANES * d && m.len() >= d);
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        for j in 0..d {
            let mj = _mm256_set1_ps(*m.get_unchecked(j));
            let v = _mm256_loadu_ps(scratch.as_ptr().add(j * LANES));
            let diff = _mm256_sub_ps(v, mj);
            let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(diff));
            let hi = _mm256_cvtps_pd(_mm256_extractf128_ps(diff, 1));
            acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(lo, lo));
            acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(hi, hi));
        }
        let r_lo = _mm256_cvtpd_ps(_mm256_sqrt_pd(acc_lo));
        let r_hi = _mm256_cvtpd_ps(_mm256_sqrt_pd(acc_hi));
        let mut out = [0.0f32; LANES];
        _mm_storeu_ps(out.as_mut_ptr(), r_lo);
        _mm_storeu_ps(out.as_mut_ptr().add(4), r_hi);
        out
    }

    /// AVX [`super::euclidean_strip`]. Safety: caller detected AVX.
    pub(super) unsafe fn euclidean_strip(points: &[f32], d: usize, m: &[f32], out: &mut [f32]) {
        let n = out.len();
        debug_assert_eq!(points.len(), n * d);
        let mut scratch = vec![0.0f32; LANES * d];
        let mut i = 0;
        while i + LANES <= n {
            transpose8(points.as_ptr().add(i * d), d, &mut scratch);
            let dist = accumulate8(&scratch, d, m);
            out[i..i + LANES].copy_from_slice(&dist);
            i += LANES;
        }
        while i < n {
            out[i] = euclidean(&points[i * d..(i + 1) * d], m);
            i += 1;
        }
    }

    /// AVX [`super::dist_rows_strip`]: the transpose is hoisted out of
    /// the medoid loop, so each lane group's ~`32·d`-byte scratch (L1
    /// resident) is built once and read back for every row of the batch.
    /// Safety: caller detected AVX.
    pub(super) unsafe fn dist_rows_strip(
        points: &[f32],
        d: usize,
        m_rows: &[&[f32]],
        outs: &mut [&mut [f32]],
    ) {
        let n = outs.first().map(|o| o.len()).unwrap_or(0);
        let mut scratch = vec![0.0f32; LANES * d];
        let mut i = 0;
        while i + LANES <= n {
            transpose8(points.as_ptr().add(i * d), d, &mut scratch);
            for (m, out) in m_rows.iter().zip(outs.iter_mut()) {
                let dist = accumulate8(&scratch, d, m);
                out[i..i + LANES].copy_from_slice(&dist);
            }
            i += LANES;
        }
        while i < n {
            for (m, out) in m_rows.iter().zip(outs.iter_mut()) {
                out[i] = euclidean(&points[i * d..(i + 1) * d], m);
            }
            i += 1;
        }
    }
}

/// The AssignPoints decision rule for one point: index of the medoid with
/// the smallest Manhattan segmental distance in its own subspace, ties to
/// the lower index. The single source of truth shared by the scalar tail
/// and [`nearest_medoid8`].
#[inline]
pub fn nearest_medoid(row: &[f32], medoid_rows: &[&[f32]], subspaces: &[Vec<usize>]) -> i32 {
    let mut best = f64::INFINITY;
    let mut best_i = 0i32;
    for (i, (m, dims)) in medoid_rows.iter().zip(subspaces).enumerate() {
        let dist = manhattan_segmental(row, m, dims);
        if dist < best {
            best = dist;
            best_i = i as i32;
        }
    }
    best_i
}

/// [`nearest_medoid`] for eight points at once: per-lane scan order and
/// tie-breaking are identical to the scalar rule, so labels match bit for
/// bit.
#[inline]
pub fn nearest_medoid8(
    rows: [&[f32]; LANES],
    medoid_rows: &[&[f32]],
    subspaces: &[Vec<usize>],
) -> [i32; LANES] {
    let mut best = [f64::INFINITY; LANES];
    let mut best_i = [0i32; LANES];
    for (i, (m, dims)) in medoid_rows.iter().zip(subspaces).enumerate() {
        let dist = segmental8(rows, m, dims);
        for l in 0..LANES {
            if dist[l] < best[l] {
                best[l] = dist[l];
                best_i[l] = i as i32;
            }
        }
    }
    best_i
}

/// Debug-only NaN sentinel for hot-path distance buffers. `dist < delta`
/// style comparisons are silently false on NaN, which would corrupt sphere
/// membership or assignment without any signal — this catches a NaN at the
/// boundary (e.g. an unfilled `RowStore` hole) before it reaches a
/// comparison. Compiles to nothing in release builds.
#[inline]
pub fn debug_assert_finite(values: &[f32], what: &str) {
    if cfg!(debug_assertions) {
        if let Some(i) = values.iter().position(|v| v.is_nan()) {
            panic!("{what}: NaN at index {i} of a hot-path distance buffer");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::manhattan_segmental;

    fn rowset(n: usize, d: usize, salt: u32) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| {
                        let h = (i as u32)
                            .wrapping_mul(2654435761)
                            .wrapping_add((j as u32).wrapping_mul(40503))
                            .wrapping_add(salt);
                        (h % 2000) as f32 * 0.25 - 250.0
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn euclidean8_is_bitwise_equal_to_scalar() {
        for d in [1usize, 3, 8, 17, 64] {
            let rows = rowset(8, d, 7);
            let m = rowset(1, d, 99).remove(0);
            let lanes: [&[f32]; LANES] = std::array::from_fn(|l| rows[l].as_slice());
            let got = euclidean8(lanes, &m);
            for l in 0..LANES {
                assert_eq!(
                    got[l].to_bits(),
                    euclidean(&rows[l], &m).to_bits(),
                    "lane {l}, d {d}"
                );
            }
        }
    }

    #[test]
    fn segmental8_is_bitwise_equal_to_scalar() {
        let d = 24;
        let rows = rowset(8, d, 1);
        let m = rowset(1, d, 2).remove(0);
        for dims in [vec![0], vec![3, 7, 11], (0..d).collect::<Vec<_>>()] {
            let lanes: [&[f32]; LANES] = std::array::from_fn(|l| rows[l].as_slice());
            let got = segmental8(lanes, &m, &dims);
            for l in 0..LANES {
                assert_eq!(
                    got[l].to_bits(),
                    manhattan_segmental(&rows[l], &m, &dims).to_bits(),
                    "lane {l}, dims {dims:?}"
                );
            }
        }
    }

    #[test]
    fn strip_handles_every_remainder() {
        let d = 5;
        let m = rowset(1, d, 3).remove(0);
        for n in 0..=20usize {
            let rows = rowset(n, d, 4);
            let flat: Vec<f32> = rows.iter().flatten().copied().collect();
            let mut out = vec![0.0f32; n];
            euclidean_strip(&flat, d, &m, &mut out);
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(
                    out[i].to_bits(),
                    euclidean(row, &m).to_bits(),
                    "n {n} i {i}"
                );
            }
        }
    }

    /// On AVX hardware this pins the intrinsics path against the portable
    /// reference bit for bit (including the transpose tail and non-8
    /// remainders); elsewhere both sides run the portable code and the
    /// test degenerates to a self-check.
    #[test]
    fn dispatched_strip_is_bitwise_equal_to_portable() {
        for (n, d) in [(40, 1), (37, 5), (64, 8), (50, 13), (24, 40)] {
            let rows = rowset(n, d, 21);
            let flat: Vec<f32> = rows.iter().flatten().copied().collect();
            let m = rowset(1, d, 22).remove(0);
            let mut fast = vec![0.0f32; n];
            let mut reference = vec![0.0f32; n];
            euclidean_strip(&flat, d, &m, &mut fast);
            euclidean_strip_portable(&flat, d, &m, &mut reference);
            for i in 0..n {
                assert_eq!(
                    fast[i].to_bits(),
                    reference[i].to_bits(),
                    "n {n} d {d} i {i}"
                );
            }
        }
    }

    /// NaNs must propagate identically through both paths — the AVX
    /// kernel's packed ops are IEEE, so a poisoned coordinate yields the
    /// same NaN rows as the scalar kernel, never a masked value.
    #[test]
    fn dispatched_strip_propagates_non_finite_like_scalar() {
        let (n, d) = (19, 6);
        let rows = rowset(n, d, 31);
        let mut flat: Vec<f32> = rows.iter().flatten().copied().collect();
        flat[3 * d + 2] = f32::NAN;
        flat[10 * d] = f32::INFINITY;
        let m = rowset(1, d, 32).remove(0);
        let mut fast = vec![0.0f32; n];
        euclidean_strip(&flat, d, &m, &mut fast);
        for i in 0..n {
            let want = euclidean(&flat[i * d..(i + 1) * d], &m);
            assert_eq!(fast[i].to_bits(), want.to_bits(), "i {i}");
        }
    }

    #[test]
    fn blocked_rows_match_per_row_strips() {
        let (n, d) = (300, 7);
        let flat: Vec<f32> = rowset(n, d, 5).into_iter().flatten().collect();
        let medoids = rowset(3, d, 6);
        let m_rows: Vec<&[f32]> = medoids.iter().map(|m| m.as_slice()).collect();
        let mut blocked = vec![vec![0.0f32; n]; 3];
        {
            let mut outs: Vec<&mut [f32]> = blocked.iter_mut().map(|r| r.as_mut_slice()).collect();
            dist_rows_strip(&flat, d, &m_rows, &mut outs);
        }
        for (r, m) in m_rows.iter().enumerate() {
            let mut single = vec![0.0f32; n];
            euclidean_strip(&flat, d, m, &mut single);
            assert_eq!(blocked[r], single, "row {r}");
        }
    }

    #[test]
    fn nearest_medoid8_matches_scalar_rule_with_ties() {
        let d = 4;
        let rows = rowset(8, d, 8);
        // Two identical medoids force ties; rule must pick the lower index.
        let m0 = rowset(1, d, 9).remove(0);
        let medoids = [m0.clone(), m0.clone(), rowset(1, d, 10).remove(0)];
        let m_rows: Vec<&[f32]> = medoids.iter().map(|m| m.as_slice()).collect();
        let subs = vec![vec![0, 2], vec![0, 2], vec![1, 3]];
        let lanes: [&[f32]; LANES] = std::array::from_fn(|l| rows[l].as_slice());
        let got = nearest_medoid8(lanes, &m_rows, &subs);
        for l in 0..LANES {
            assert_eq!(got[l], nearest_medoid(&rows[l], &m_rows, &subs), "lane {l}");
        }
    }

    #[test]
    fn tile_points_is_a_lane_multiple_and_fits_the_budget() {
        for d in [1usize, 8, 32, 128, 100_000] {
            let t = tile_points(d);
            assert_eq!(t % LANES, 0);
            assert!(t >= LANES);
            if t > LANES {
                assert!(t * d * 4 <= TILE_BYTES, "d {d}: tile {t}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "NaN at index 2")]
    fn debug_sentinel_catches_nan() {
        if !cfg!(debug_assertions) {
            // Release builds compile the check out; satisfy should_panic.
            panic!("NaN at index 2");
        }
        debug_assert_finite(&[0.0, 1.0, f32::NAN], "test row");
    }
}
