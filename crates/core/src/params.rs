//! Algorithm parameters and their validation.

use std::num::NonZeroUsize;

use crate::dataset::DataMatrix;
use crate::error::{ProclusError, Result};

/// How bad medoids are selected at the end of an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BadMedoidRule {
    /// The EDBT'22 paper's wording (§2.1): medoids whose cluster is smaller
    /// than `(n/k) · minDev`; if there are none, the single medoid with the
    /// smallest cluster.
    #[default]
    PaperEdbt22,
    /// The original PROCLUS (SIGMOD'99) rule: the medoid with the smallest
    /// cluster is always bad, *plus* all medoids below the `(n/k) · minDev`
    /// threshold.
    Original99,
}

/// PROCLUS parameters. Defaults follow the paper's experimental setup
/// (§5: `k = 10`, `l = 5`, `A = 100`, `B = 10`, `minDev = 0.7`,
/// `itrPat = 5`).
///
/// ```
/// use proclus::Params;
/// let p = Params::new(10, 5).with_seed(7).with_a(50);
/// assert_eq!(p.a, 50);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Number of clusters `k`.
    pub k: usize,
    /// Average number of dimensions per cluster `l` (must be ≥ 2).
    pub l: usize,
    /// Sample-size constant `A`: `|Data'| = A · k`.
    pub a: usize,
    /// Potential-medoid constant `B`: `|M| = B · k` (requires `B ≤ A`).
    pub b: usize,
    /// Minimum cluster-size deviation threshold in `(0, 1]`.
    pub min_dev: f64,
    /// Stop after this many iterations without improvement.
    pub itr_pat: usize,
    /// Hard cap on total iterative-phase iterations (safety valve; the
    /// paper's pseudocode has no bound on total iterations).
    pub max_total_iterations: usize,
    /// Seed for all randomized choices; equal seeds make every algorithm
    /// variant follow the same medoid search path.
    pub seed: u64,
    /// Bad-medoid selection rule (see [`BadMedoidRule`]).
    pub bad_medoid_rule: BadMedoidRule,
    /// Number of (simulated) devices the sharded backend partitions the
    /// points across. `1` (the default) means a single device; the CPU and
    /// plain GPU backends ignore it. Non-zero by construction.
    pub devices: NonZeroUsize,
}

impl Params {
    /// Creates parameters with the paper's defaults for everything but
    /// `k` and `l`.
    pub fn new(k: usize, l: usize) -> Self {
        Self {
            k,
            l,
            a: 100,
            b: 10,
            min_dev: 0.7,
            itr_pat: 5,
            max_total_iterations: 200,
            seed: 0xC0FFEE,
            bad_medoid_rule: BadMedoidRule::default(),
            devices: NonZeroUsize::MIN,
        }
    }

    /// Sets the sample constant `A`.
    pub fn with_a(mut self, a: usize) -> Self {
        self.a = a;
        self
    }

    /// Sets the potential-medoid constant `B`.
    pub fn with_b(mut self, b: usize) -> Self {
        self.b = b;
        self
    }

    /// Sets the minimum-deviation threshold.
    pub fn with_min_dev(mut self, min_dev: f64) -> Self {
        self.min_dev = min_dev;
        self
    }

    /// Sets the no-improvement patience.
    pub fn with_itr_pat(mut self, itr_pat: usize) -> Self {
        self.itr_pat = itr_pat;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the hard iteration cap.
    pub fn with_max_total_iterations(mut self, cap: usize) -> Self {
        self.max_total_iterations = cap;
        self
    }

    /// Sets the bad-medoid rule.
    pub fn with_bad_medoid_rule(mut self, rule: BadMedoidRule) -> Self {
        self.bad_medoid_rule = rule;
        self
    }

    /// Sets the sharded-backend device count.
    pub fn with_devices(mut self, devices: NonZeroUsize) -> Self {
        self.devices = devices;
        self
    }

    /// Size of the random sample `Data'`, clamped to the dataset size.
    pub fn sample_size(&self, n: usize) -> usize {
        (self.a * self.k).min(n)
    }

    /// Number of potential medoids `|M| = B · k`, clamped to the sample size.
    pub fn num_potential_medoids(&self, n: usize) -> usize {
        (self.b * self.k).min(self.sample_size(n))
    }

    /// Validates the data-independent constraints (`k ≥ 2`, `l ≥ 2`,
    /// `0 < B ≤ A`, `minDev ∈ (0, 1]`, positive iteration bounds).
    pub fn validate_basic(&self) -> Result<()> {
        if self.k < 2 {
            return Err(ProclusError::params(format!(
                "k must be >= 2 (the medoid radius delta_i is the distance \
                 to the nearest other medoid), got k = {}",
                self.k
            )));
        }
        if self.l < 2 {
            return Err(ProclusError::params(format!(
                "l must be >= 2 (every medoid receives at least two \
                 dimensions), got l = {}",
                self.l
            )));
        }
        if self.a == 0 || self.b == 0 {
            return Err(ProclusError::params("A and B must be positive".to_string()));
        }
        if self.b > self.a {
            return Err(ProclusError::params(format!(
                "B = {} must not exceed A = {}",
                self.b, self.a
            )));
        }
        if !(0.0..=1.0).contains(&self.min_dev) || self.min_dev == 0.0 {
            return Err(ProclusError::params(format!(
                "minDev must lie in (0, 1], got {}",
                self.min_dev
            )));
        }
        if self.itr_pat == 0 {
            return Err(ProclusError::params("itrPat must be positive".to_string()));
        }
        if self.max_total_iterations == 0 {
            return Err(ProclusError::params(
                "max_total_iterations must be positive".to_string(),
            ));
        }
        Ok(())
    }

    /// Validates the parameters against a dataset (the basic constraints
    /// plus `l ≤ d` and enough potential medoids for `k`).
    pub fn validate(&self, data: &DataMatrix) -> Result<()> {
        self.validate_basic()?;
        if self.l > data.d() {
            return Err(ProclusError::DimensionalityExceeded {
                l: self.l,
                d: data.d(),
            });
        }
        if self.num_potential_medoids(data.n()) < self.k {
            return Err(ProclusError::params(format!(
                "need at least k = {} potential medoids but the dataset \
                 only yields {} (n = {})",
                self.k,
                self.num_potential_medoids(data.n()),
                data.n()
            )));
        }
        Ok(())
    }

    /// Starts a validating builder (see [`ParamsBuilder`]).
    pub fn builder(k: usize, l: usize) -> ParamsBuilder {
        ParamsBuilder::new(k, l)
    }
}

/// Validating builder for [`Params`]: the same knobs as the `with_*`
/// methods, but terminated by [`build`](ParamsBuilder::build) /
/// [`build_for`](ParamsBuilder::build_for), which return
/// [`ProclusError::InvalidParams`] instead of deferring the failure to run
/// time.
///
/// ```
/// use proclus::{Params, ProclusError};
/// let p = Params::builder(10, 5).seed(7).a(50).build().unwrap();
/// assert_eq!(p.a, 50);
/// let err = Params::builder(1, 5).build().unwrap_err();
/// assert!(matches!(err, ProclusError::InvalidParams { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct ParamsBuilder {
    inner: Params,
    devices: usize,
    dims: Option<usize>,
}

impl ParamsBuilder {
    /// Starts from the paper defaults with the given `k` and `l`.
    pub fn new(k: usize, l: usize) -> Self {
        Self {
            inner: Params::new(k, l),
            devices: 1,
            dims: None,
        }
    }

    /// Sets the sample constant `A`.
    pub fn a(mut self, a: usize) -> Self {
        self.inner.a = a;
        self
    }

    /// Sets the potential-medoid constant `B`.
    pub fn b(mut self, b: usize) -> Self {
        self.inner.b = b;
        self
    }

    /// Sets the minimum-deviation threshold.
    pub fn min_dev(mut self, min_dev: f64) -> Self {
        self.inner.min_dev = min_dev;
        self
    }

    /// Sets the no-improvement patience.
    pub fn itr_pat(mut self, itr_pat: usize) -> Self {
        self.inner.itr_pat = itr_pat;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// Sets the hard iteration cap.
    pub fn max_total_iterations(mut self, cap: usize) -> Self {
        self.inner.max_total_iterations = cap;
        self
    }

    /// Sets the bad-medoid rule.
    pub fn bad_medoid_rule(mut self, rule: BadMedoidRule) -> Self {
        self.inner.bad_medoid_rule = rule;
        self
    }

    /// Sets the sharded-backend device count. `0` is rejected at build
    /// time with a typed [`ProclusError::InvalidParams`].
    pub fn devices(mut self, devices: usize) -> Self {
        self.devices = devices;
        self
    }

    /// Declares the dimensionality of the data these parameters will run
    /// on, so `l > d` is caught by [`build`](Self::build) instead of deep
    /// inside the run. [`build_for`](Self::build_for) uses the dataset's
    /// actual dimensionality instead.
    pub fn dims(mut self, d: usize) -> Self {
        self.dims = Some(d);
        self
    }

    fn finish(mut self) -> Result<Params> {
        self.inner.devices = NonZeroUsize::new(self.devices).ok_or_else(|| {
            ProclusError::params("devices must be >= 1 (got devices = 0)".to_string())
        })?;
        Ok(self.inner)
    }

    /// Validates the data-independent constraints (plus `l ≤ d` against
    /// the [`dims`](Self::dims) hint, when one was declared) and returns
    /// the params.
    pub fn build(self) -> Result<Params> {
        self.inner.validate_basic()?;
        if let Some(d) = self.dims {
            if self.inner.l > d {
                return Err(ProclusError::DimensionalityExceeded { l: self.inner.l, d });
            }
        }
        self.finish()
    }

    /// Validates against a dataset (adds `l ≤ d` and the `B·k ≤ A·k ≤ n`
    /// derived potential-medoid check) and returns the params.
    pub fn build_for(self, data: &DataMatrix) -> Result<Params> {
        self.inner.validate(data)?;
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, d: usize) -> DataMatrix {
        DataMatrix::from_flat(vec![0.5; n * d], n, d).unwrap()
    }

    #[test]
    fn defaults_match_paper() {
        let p = Params::new(10, 5);
        assert_eq!((p.a, p.b), (100, 10));
        assert_eq!(p.min_dev, 0.7);
        assert_eq!(p.itr_pat, 5);
    }

    #[test]
    fn valid_default_config_passes() {
        assert!(Params::new(10, 5).validate(&data(5000, 15)).is_ok());
    }

    #[test]
    fn rejects_degenerate_k_and_l() {
        let d = data(1000, 15);
        assert!(Params::new(1, 5).validate(&d).is_err());
        assert!(Params::new(10, 1).validate(&d).is_err());
        assert!(Params::new(10, 16).validate(&d).is_err());
    }

    #[test]
    fn rejects_b_greater_than_a() {
        let p = Params::new(10, 5).with_a(5).with_b(10);
        assert!(p.validate(&data(1000, 15)).is_err());
    }

    #[test]
    fn rejects_bad_min_dev() {
        let d = data(1000, 15);
        assert!(Params::new(10, 5).with_min_dev(0.0).validate(&d).is_err());
        assert!(Params::new(10, 5).with_min_dev(1.5).validate(&d).is_err());
    }

    #[test]
    fn sample_sizes_clamp_to_n() {
        let p = Params::new(10, 5); // A*k = 1000, B*k = 100
        assert_eq!(p.sample_size(500), 500);
        assert_eq!(p.num_potential_medoids(500), 100);
        assert_eq!(p.sample_size(10_000), 1000);
    }

    #[test]
    fn tiny_dataset_fails_when_not_enough_medoids() {
        let p = Params::new(10, 2);
        assert!(p.validate(&data(5, 4)).is_err());
    }

    #[test]
    fn builder_accepts_valid_and_rejects_invalid() {
        let p = Params::builder(4, 3)
            .a(20)
            .b(5)
            .seed(9)
            .min_dev(0.5)
            .itr_pat(3)
            .max_total_iterations(50)
            .build()
            .unwrap();
        assert_eq!((p.k, p.l, p.a, p.b, p.seed), (4, 3, 20, 5, 9));

        assert!(Params::builder(1, 3).build().is_err());
        assert!(Params::builder(4, 1).build().is_err());
        assert!(Params::builder(4, 3).a(5).b(10).build().is_err());
        assert!(Params::builder(4, 3).min_dev(0.0).build().is_err());
        assert!(Params::builder(4, 3).itr_pat(0).build().is_err());
    }

    #[test]
    fn builder_build_for_adds_data_checks() {
        let d = data(1000, 4);
        assert!(Params::builder(4, 3).build_for(&d).is_ok());
        // l > d only fails with the dataset (or a dims hint) in hand.
        assert!(Params::builder(4, 5).build().is_ok());
        assert!(Params::builder(4, 5).build_for(&d).is_err());
        // Too few points for k potential medoids.
        assert!(Params::builder(10, 2).build_for(&data(5, 4)).is_err());
    }

    #[test]
    fn dims_hint_catches_oversized_l_at_build_time() {
        let err = Params::builder(4, 9).dims(6).build().unwrap_err();
        assert_eq!(err, ProclusError::DimensionalityExceeded { l: 9, d: 6 });
        assert!(err.to_string().contains("l = 9"), "{err}");
        assert!(err.to_string().contains("d = 6"), "{err}");
        assert!(Params::builder(4, 6).dims(6).build().is_ok());
        // build_for reports the same typed error from the dataset itself.
        let err = Params::builder(4, 9).build_for(&data(500, 6)).unwrap_err();
        assert_eq!(err, ProclusError::DimensionalityExceeded { l: 9, d: 6 });
    }

    #[test]
    fn devices_knob_validates_at_build_time() {
        let p = Params::builder(4, 3).devices(4).build().unwrap();
        assert_eq!(p.devices.get(), 4);
        assert_eq!(Params::new(4, 3).devices.get(), 1, "default is one device");
        let err = Params::builder(4, 3).devices(0).build().unwrap_err();
        assert!(matches!(err, ProclusError::InvalidParams { .. }));
        assert!(err.to_string().contains("devices"), "{err}");
        let err = Params::builder(4, 3)
            .devices(0)
            .build_for(&data(500, 4))
            .unwrap_err();
        assert!(matches!(err, ProclusError::InvalidParams { .. }));
    }
}
