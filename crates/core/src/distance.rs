//! The three distance measures PROCLUS uses (§2):
//!
//! * full-dimensional **Euclidean** distance — greedy selection, the medoid
//!   radii `δ_i`, and the spheres `L_i`;
//! * per-dimension **Manhattan** terms — the `H`/`X` statistics;
//! * **Manhattan segmental** distance in a subspace — point assignment,
//!   cluster evaluation and outlier spheres.
//!
//! Point values are `f32` (matching the GPU); distances accumulate in `f64`
//! and are returned as `f32` where the GPU stores them (`Dist`, `δ`) and as
//! `f64` where they feed cost decisions.
//!
//! # The precision contract (pinned)
//!
//! Per-dimension terms are computed as `(a - b) as f64`: the **subtraction
//! happens in `f32`**, and only the difference is widened before the `f64`
//! accumulation. This is deliberate, not an accident of the cast: the
//! simulated-GPU kernels (`proclus_gpu::kernels::dist`) and the vectorized
//! CPU path ([`crate::distance_simd`]) compute the same `f32` difference,
//! and the cross-backend equivalence suites require `Dist`/`H`/`X` to match
//! **bitwise** between CPU, GPU and sharded runs. Since `a` and `b` are
//! both exact `f32` data values, the `f32` difference is within 1/2 ulp of
//! the `f64` one; what matters for reproducibility is that every backend
//! performs the *same* operation. Accumulation order is ascending dimension
//! index, one chain per distance — also pinned, because `f64` addition is
//! not associative. Tests here and in `distance_simd` lock both choices in;
//! do not "fix" the cast to `a as f64 - b as f64` without migrating every
//! backend and every committed golden artifact at once.

/// Full-dimensional Euclidean distance `‖a − b‖₂`.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        let diff = (*x - *y) as f64;
        acc += diff * diff;
    }
    acc.sqrt() as f32
}

/// Full-dimensional Manhattan distance `‖a − b‖₁`.
#[inline]
pub fn manhattan(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| ((*x - *y) as f64).abs()).sum()
}

/// Manhattan segmental distance in subspace `dims`:
/// `‖a − b‖₁^D / |D|` (§2).
///
/// `dims` must be non-empty — an empty subspace would yield `0.0 / 0.0 =
/// NaN`, which compares false against everything and silently poisons
/// assignment and outlier decisions. The phase entry points
/// ([`crate::phases::assign`], [`crate::phases::refinement`]) enforce the
/// invariant with release-mode asserts once per call, so this per-call
/// check can stay debug-only in the innermost loop.
#[inline]
pub fn manhattan_segmental(a: &[f32], b: &[f32], dims: &[usize]) -> f64 {
    debug_assert!(!dims.is_empty(), "manhattan_segmental: empty subspace");
    let mut acc = 0.0f64;
    for &j in dims {
        acc += ((a[j] - b[j]) as f64).abs();
    }
    acc / dims.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_hand_computation() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert!((euclidean(&a, &b) - 5.0).abs() < 1e-6);
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn manhattan_matches_hand_computation() {
        assert_eq!(manhattan(&[1.0, -2.0], &[4.0, 2.0]), 7.0);
    }

    #[test]
    fn segmental_averages_over_selected_dims_only() {
        let a = [0.0, 10.0, 2.0, 100.0];
        let b = [1.0, 10.0, 5.0, -100.0];
        // dims {0, 2}: (1 + 3) / 2
        assert_eq!(manhattan_segmental(&a, &b, &[0, 2]), 2.0);
        // the excluded wild dim 3 must not matter
        assert_eq!(manhattan_segmental(&a, &b, &[1]), 0.0);
    }

    #[test]
    fn distances_are_symmetric() {
        let a = [1.5, -0.25, 3.0];
        let b = [0.5, 2.0, -1.0];
        assert_eq!(euclidean(&a, &b), euclidean(&b, &a));
        assert_eq!(manhattan(&a, &b), manhattan(&b, &a));
        assert_eq!(
            manhattan_segmental(&a, &b, &[0, 2]),
            manhattan_segmental(&b, &a, &[0, 2])
        );
    }

    #[test]
    fn subtraction_happens_in_f32_before_widening() {
        // Pin the precision contract: the per-dimension difference is an
        // f32 subtraction. 1e8 and 1e8 + 1 round to the same f32, so the
        // f32 difference is exactly 0 — an f64 subtraction of the widened
        // operands would also give 0 here, so build a case that separates
        // them: values whose f32 difference rounds differently than the
        // f64 difference of their widened forms.
        let a = [16_777_217.0f32]; // rounds to 16_777_216 as f32
        let b = [1.0f32];
        // f32 path: (16_777_216 - 1) = 16_777_215 exactly representable.
        let expected = (16_777_215.0f64 * 16_777_215.0f64).sqrt() as f32;
        assert_eq!(euclidean(&a, &b).to_bits(), expected.to_bits());

        // And a case where f32 subtraction itself rounds: the contract is
        // "same op on every backend", pinned as the f32 difference.
        let a = [33_554_433.0f32]; // f32 value 33_554_432
        let b = [0.5f32];
        let diff = (a[0] - b[0]) as f64; // rounds in f32
        assert_eq!(
            euclidean(&a, &b).to_bits(),
            ((diff * diff).sqrt() as f32).to_bits()
        );
        assert_eq!(manhattan(&a, &b).to_bits(), diff.abs().to_bits());
        assert_eq!(
            manhattan_segmental(&a, &b, &[0]).to_bits(),
            diff.abs().to_bits()
        );
    }

    #[test]
    fn accumulation_is_ascending_dimension_order() {
        // Pin the reduction order: summing a large term first then tiny
        // terms gives a different f64 than the reverse. The kernel must
        // walk dimensions ascending.
        let a = [1.0e16f32, 1.0, 1.0, 1.0];
        let b = [0.0f32; 4];
        let mut acc = 0.0f64;
        for j in 0..4 {
            let diff = (a[j] - b[j]) as f64;
            acc += diff * diff;
        }
        assert_eq!(euclidean(&a, &b).to_bits(), (acc.sqrt() as f32).to_bits());
    }

    #[test]
    fn triangle_inequality_euclidean_smoke() {
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        let c = [2.0, 0.5];
        assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + 1e-6);
    }
}
