//! The three distance measures PROCLUS uses (§2):
//!
//! * full-dimensional **Euclidean** distance — greedy selection, the medoid
//!   radii `δ_i`, and the spheres `L_i`;
//! * per-dimension **Manhattan** terms — the `H`/`X` statistics;
//! * **Manhattan segmental** distance in a subspace — point assignment,
//!   cluster evaluation and outlier spheres.
//!
//! Point values are `f32` (matching the GPU); distances accumulate in `f64`
//! and are returned as `f32` where the GPU stores them (`Dist`, `δ`) and as
//! `f64` where they feed cost decisions.

/// Full-dimensional Euclidean distance `‖a − b‖₂`.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        let diff = (*x - *y) as f64;
        acc += diff * diff;
    }
    acc.sqrt() as f32
}

/// Full-dimensional Manhattan distance `‖a − b‖₁`.
#[inline]
pub fn manhattan(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| ((*x - *y) as f64).abs()).sum()
}

/// Manhattan segmental distance in subspace `dims`:
/// `‖a − b‖₁^D / |D|` (§2). `dims` must be non-empty.
#[inline]
pub fn manhattan_segmental(a: &[f32], b: &[f32], dims: &[usize]) -> f64 {
    debug_assert!(!dims.is_empty());
    let mut acc = 0.0f64;
    for &j in dims {
        acc += ((a[j] - b[j]) as f64).abs();
    }
    acc / dims.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_hand_computation() {
        let a = [0.0, 3.0];
        let b = [4.0, 0.0];
        assert!((euclidean(&a, &b) - 5.0).abs() < 1e-6);
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn manhattan_matches_hand_computation() {
        assert_eq!(manhattan(&[1.0, -2.0], &[4.0, 2.0]), 7.0);
    }

    #[test]
    fn segmental_averages_over_selected_dims_only() {
        let a = [0.0, 10.0, 2.0, 100.0];
        let b = [1.0, 10.0, 5.0, -100.0];
        // dims {0, 2}: (1 + 3) / 2
        assert_eq!(manhattan_segmental(&a, &b, &[0, 2]), 2.0);
        // the excluded wild dim 3 must not matter
        assert_eq!(manhattan_segmental(&a, &b, &[1]), 0.0);
    }

    #[test]
    fn distances_are_symmetric() {
        let a = [1.5, -0.25, 3.0];
        let b = [0.5, 2.0, -1.0];
        assert_eq!(euclidean(&a, &b), euclidean(&b, &a));
        assert_eq!(manhattan(&a, &b), manhattan(&b, &a));
        assert_eq!(
            manhattan_segmental(&a, &b, &[0, 2]),
            manhattan_segmental(&b, &a, &[0, 2])
        );
    }

    #[test]
    fn triangle_inequality_euclidean_smoke() {
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        let c = [2.0, 0.5];
        assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + 1e-6);
    }
}
