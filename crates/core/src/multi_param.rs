//! Running PROCLUS for multiple `(k, l)` parameter settings with partial
//! result reuse (§3.1).
//!
//! Users rarely know `k` and `l` up front, so PROCLUS is run over a grid of
//! settings. FAST-PROCLUS exploits that, in three cumulative levels:
//!
//! 1. [`ReuseLevel::SharedCache`] (*multi-param 1*): the sample `S` is drawn
//!    once (for the largest `k`) and the `Dist`/`H` caches persist across
//!    settings; greedy selection still runs per setting, but any potential
//!    medoid seen before hits its cached row.
//! 2. [`ReuseLevel::SharedGreedy`] (*multi-param 2*): greedy selection also
//!    runs only once, for the largest `k`; every setting draws its medoids
//!    from the same constant-size `M` (`|M| = B · k_max`, which the paper
//!    describes as trading an effective increase of `A` and `B` for speed).
//! 3. [`ReuseLevel::WarmStart`] (*multi-param 3*): each setting's initial
//!    medoid set is seeded from the previous setting's best medoids instead
//!    of a fresh random draw, for faster convergence.
//!
//! [`ReuseLevel::Independent`] runs every setting from scratch (the
//! comparison baseline in Fig. 3a–e).

use proclus_telemetry::{span, NullRecorder, Recorder};

use crate::backend::CpuBackend;
use crate::baseline::BaselineEngine;
use crate::cancel::CancelToken;
use crate::dataset::DataMatrix;
use crate::driver::{grid_core_shared, initialization_phase, run_core};
use crate::error::Result;
use crate::fast::FastEngine;
use crate::par::Executor;
use crate::params::Params;
use crate::result::Clustering;
use crate::rng::ProclusRng;

/// One parameter setting of the exploration grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Setting {
    /// Number of clusters.
    pub k: usize,
    /// Average subspace dimensionality.
    pub l: usize,
}

impl Setting {
    /// Creates a setting.
    pub fn new(k: usize, l: usize) -> Self {
        Self { k, l }
    }
}

/// How much computation is shared between parameter settings (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReuseLevel {
    /// Every setting runs from scratch.
    Independent,
    /// Multi-param 1: shared sample + persistent `Dist`/`H` caches.
    SharedCache,
    /// Multi-param 2: additionally, greedy picking runs once (largest `k`).
    SharedGreedy,
    /// Multi-param 3: additionally, warm-start from the previous best
    /// medoids.
    WarmStart,
}

pub(crate) fn derive_params(base: &Params, s: Setting) -> Params {
    let mut p = base.clone();
    p.k = s.k;
    p.l = s.l;
    p
}

/// Returns the cancel token for setting `i`: `cancels` is either empty (no
/// per-setting cancellation) or one token per setting.
pub(crate) fn cancel_for(cancels: &[CancelToken], i: usize) -> CancelToken {
    cancels.get(i).cloned().unwrap_or_default()
}

/// Runs FAST-PROCLUS over a grid of settings with the chosen reuse level.
/// Returns one clustering per setting, in input order.
///
/// Any invalid setting fails the whole call (the historical contract);
/// use [`fast_proclus_multi_outcomes`] for per-setting skip-and-report.
pub fn fast_proclus_multi(
    data: &DataMatrix,
    base: &Params,
    settings: &[Setting],
    level: ReuseLevel,
    exec: &Executor,
) -> Result<Vec<Clustering>> {
    for &s in settings {
        derive_params(base, s).validate(data)?;
    }
    fast_proclus_multi_outcomes(data, base, settings, level, exec, &NullRecorder, &[])
        .into_iter()
        .collect()
}

/// [`fast_proclus_multi`] with per-setting **outcomes**: an invalid or
/// cancelled setting yields `Err` in its slot instead of aborting the whole
/// grid, and every other setting still runs. This is the entry point the
/// serving layer batches through.
///
/// * Each setting is recorded as its own root `run` span — including failed
///   settings, whose (empty) span keeps the span↔setting correspondence
///   stable for per-job telemetry splitting. The shared greedy pass of
///   level ≥ 2, when present, is a free-standing `initialization` span
///   before the first run (batch overhead, attributable to no single job).
/// * `cancels` is either empty or holds one [`CancelToken`] per setting;
///   token `i` is checked before and during (at phase boundaries) the run
///   of setting `i`.
/// * Skipped settings consume no RNG draws, so the remaining settings
///   produce the same clusterings as a grid submitted without the invalid
///   entries.
/// * Shared state (sample size, `|M| = B·k_max`) is derived from the
///   *valid* settings only.
pub fn fast_proclus_multi_outcomes(
    data: &DataMatrix,
    base: &Params,
    settings: &[Setting],
    level: ReuseLevel,
    exec: &Executor,
    rec: &dyn Recorder,
    cancels: &[CancelToken],
) -> Vec<Result<Clustering>> {
    debug_assert!(cancels.is_empty() || cancels.len() == settings.len());
    let validity: Vec<Result<()>> = settings
        .iter()
        .map(|&s| derive_params(base, s).validate(data))
        .collect();
    let mut rng = ProclusRng::new(base.seed);

    if level == ReuseLevel::Independent {
        let mut results: Vec<Result<Clustering>> = Vec::with_capacity(settings.len());
        for (i, &s) in settings.iter().enumerate() {
            let _run = span(rec, "run");
            if let Err(e) = &validity[i] {
                results.push(Err(e.clone()));
                continue;
            }
            let cancel = cancel_for(cancels, i);
            if let Err(e) = cancel.check() {
                results.push(Err(e));
                continue;
            }
            let params = derive_params(base, s);
            let mut backend = CpuBackend::with_engine(data, *exec, Box::new(FastEngine::new(data)));
            results.push(
                initialization_phase(&mut backend, &params, &mut rng, rec)
                    .and_then(|m_data| {
                        run_core(&mut backend, &params, &mut rng, &m_data, None, rec, &cancel)
                    })
                    .map(|(c, _)| c),
            );
        }
        return results;
    }

    // Reuse levels ≥ 1 share the sample, the Dist/H caches (the backend
    // persists across settings), and — at higher levels — the greedy pass
    // and the warm-start medoids. The loop itself is backend-generic.
    let mut backend = CpuBackend::with_engine(data, *exec, Box::new(FastEngine::new(data)));
    grid_core_shared(
        &mut backend,
        base,
        settings,
        level,
        &validity,
        &mut rng,
        rec,
        cancels,
    )
}

/// Builds an initial medoid set of size `k` from the previous best medoids
/// (indices into the shared `M`): a random subset when shrinking, the full
/// previous set plus random fresh medoids when growing.
pub(crate) fn warm_start_mcur(
    prev: &[usize],
    k: usize,
    m_len: usize,
    rng: &mut ProclusRng,
) -> Vec<usize> {
    if k <= prev.len() {
        rng.sample_distinct(prev.len(), k)
            .into_iter()
            .map(|i| prev[i])
            .collect()
    } else {
        let mut mcur = prev.to_vec();
        while mcur.len() < k {
            let next = rng.draw_until(m_len, |c| !mcur.contains(&c));
            mcur.push(next);
        }
        mcur
    }
}

/// Runs baseline PROCLUS independently for every setting (the reference
/// point of Fig. 3a–e; no reuse is possible in the baseline).
///
/// Any invalid setting fails the whole call (the historical contract);
/// use [`proclus_multi_outcomes`] for per-setting skip-and-report.
pub fn proclus_multi(
    data: &DataMatrix,
    base: &Params,
    settings: &[Setting],
    exec: &Executor,
) -> Result<Vec<Clustering>> {
    for &s in settings {
        derive_params(base, s).validate(data)?;
    }
    proclus_multi_outcomes(data, base, settings, exec, &NullRecorder, &[])
        .into_iter()
        .collect()
}

/// [`proclus_multi`] with per-setting outcomes: one root `run` span per
/// setting (failed settings included), `Err` slots for invalid or cancelled
/// settings, and no RNG consumption by skipped settings. See
/// [`fast_proclus_multi_outcomes`] for the contract details.
pub fn proclus_multi_outcomes(
    data: &DataMatrix,
    base: &Params,
    settings: &[Setting],
    exec: &Executor,
    rec: &dyn Recorder,
    cancels: &[CancelToken],
) -> Vec<Result<Clustering>> {
    debug_assert!(cancels.is_empty() || cancels.len() == settings.len());
    let mut rng = ProclusRng::new(base.seed);
    let mut results: Vec<Result<Clustering>> = Vec::with_capacity(settings.len());
    for (i, &s) in settings.iter().enumerate() {
        let _run = span(rec, "run");
        let params = derive_params(base, s);
        if let Err(e) = params.validate(data) {
            results.push(Err(e));
            continue;
        }
        let cancel = cancel_for(cancels, i);
        if let Err(e) = cancel.check() {
            results.push(Err(e));
            continue;
        }
        let mut backend = CpuBackend::with_engine(data, *exec, Box::new(BaselineEngine));
        results.push(
            initialization_phase(&mut backend, &params, &mut rng, rec)
                .and_then(|m_data| {
                    run_core(&mut backend, &params, &mut rng, &m_data, None, rec, &cancel)
                })
                .map(|(c, _)| c),
        );
    }
    results
}

/// The 9-combination `(k, l)` grid used throughout §5.3 of the paper:
/// `k ∈ {k₀−2, k₀, k₀+2} × l ∈ {l₀−2, l₀, l₀+2}` around the defaults.
pub fn default_grid(k0: usize, l0: usize) -> Vec<Setting> {
    let mut grid = Vec::with_capacity(9);
    for dk in [-2i64, 0, 2] {
        for dl in [-2i64, 0, 2] {
            let k = (k0 as i64 + dk).max(2) as usize;
            let l = (l0 as i64 + dl).max(2) as usize;
            grid.push(Setting::new(k, l));
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(n: usize) -> DataMatrix {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let c = (i % 5) as f32 * 20.0;
                vec![
                    c + ((i * 3) % 13) as f32 * 0.1,
                    c + ((i * 5) % 11) as f32 * 0.1,
                    ((i * 7) % 100) as f32,
                    ((i * 11) % 100) as f32,
                ]
            })
            .collect();
        DataMatrix::from_rows(&rows).unwrap()
    }

    fn grid() -> Vec<Setting> {
        vec![Setting::new(3, 2), Setting::new(4, 3), Setting::new(5, 2)]
    }

    #[test]
    fn all_levels_produce_valid_results_per_setting() {
        let data = blob_data(500);
        let base = Params::new(5, 2).with_a(20).with_b(4).with_seed(31);
        for level in [
            ReuseLevel::Independent,
            ReuseLevel::SharedCache,
            ReuseLevel::SharedGreedy,
            ReuseLevel::WarmStart,
        ] {
            let results =
                fast_proclus_multi(&data, &base, &grid(), level, &Executor::Sequential).unwrap();
            assert_eq!(results.len(), 3);
            for (r, s) in results.iter().zip(grid()) {
                r.validate_structure(500, 4, s.l)
                    .unwrap_or_else(|e| panic!("{level:?} / {s:?}: {e}"));
                assert_eq!(r.k(), s.k);
            }
        }
    }

    #[test]
    fn proclus_multi_matches_settings() {
        let data = blob_data(400);
        let base = Params::new(5, 2).with_a(20).with_b(4).with_seed(5);
        let results = proclus_multi(&data, &base, &grid(), &Executor::Sequential).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[1].k(), 4);
    }

    #[test]
    fn default_grid_is_nine_settings_around_defaults() {
        let g = default_grid(10, 5);
        assert_eq!(g.len(), 9);
        assert!(g.contains(&Setting::new(8, 3)));
        assert!(g.contains(&Setting::new(12, 7)));
        assert!(g.contains(&Setting::new(10, 5)));
    }

    #[test]
    fn default_grid_clamps_small_parameters() {
        let g = default_grid(3, 3);
        assert!(g.iter().all(|s| s.k >= 2 && s.l >= 2));
    }

    #[test]
    fn warm_start_shrink_takes_subset_of_previous() {
        let mut rng = ProclusRng::new(3);
        let prev = vec![10usize, 20, 30, 40, 50];
        let mcur = warm_start_mcur(&prev, 3, 100, &mut rng);
        assert_eq!(mcur.len(), 3);
        assert!(mcur.iter().all(|m| prev.contains(m)));
    }

    #[test]
    fn warm_start_grow_keeps_previous_and_adds_fresh() {
        let mut rng = ProclusRng::new(3);
        let prev = vec![10usize, 20];
        let mcur = warm_start_mcur(&prev, 4, 100, &mut rng);
        assert_eq!(&mcur[..2], &[10, 20]);
        let set: std::collections::HashSet<_> = mcur.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn outcomes_skip_and_report_invalid_settings() {
        let data = blob_data(500);
        let base = Params::new(5, 2).with_a(20).with_b(4).with_seed(31);
        // l = 9 > d = 4 → invalid; the neighbours must still run.
        let settings = vec![Setting::new(3, 2), Setting::new(3, 9), Setting::new(4, 3)];
        let out = fast_proclus_multi_outcomes(
            &data,
            &base,
            &settings,
            ReuseLevel::SharedCache,
            &Executor::Sequential,
            &NullRecorder,
            &[],
        );
        assert_eq!(out.len(), 3);
        assert!(out[0].is_ok());
        assert!(matches!(
            out[1],
            Err(crate::error::ProclusError::DimensionalityExceeded { l: 9, d: 4 })
        ));
        assert!(out[2].is_ok());
        // The strict wrapper keeps the historical abort-on-invalid contract.
        assert!(fast_proclus_multi(
            &data,
            &base,
            &settings,
            ReuseLevel::SharedCache,
            &Executor::Sequential
        )
        .is_err());
        // Skipped settings consume no RNG: the valid settings match a grid
        // submitted without the invalid entry.
        let clean = fast_proclus_multi(
            &data,
            &base,
            &[settings[0], settings[2]],
            ReuseLevel::SharedCache,
            &Executor::Sequential,
        )
        .unwrap();
        assert_eq!(out[0].as_ref().unwrap(), &clean[0]);
        assert_eq!(out[2].as_ref().unwrap(), &clean[1]);
    }

    #[test]
    fn outcomes_report_invalid_settings_for_the_baseline_grid() {
        let data = blob_data(400);
        let base = Params::new(4, 2).with_a(20).with_b(4).with_seed(5);
        let settings = vec![Setting::new(1, 2), Setting::new(3, 2)];
        let out = proclus_multi_outcomes(
            &data,
            &base,
            &settings,
            &Executor::Sequential,
            &NullRecorder,
            &[],
        );
        assert!(out[0].is_err());
        assert!(out[1].is_ok());
        assert!(proclus_multi(&data, &base, &settings, &Executor::Sequential).is_err());
    }

    #[test]
    fn outcomes_honour_per_setting_cancellation() {
        let data = blob_data(400);
        let base = Params::new(4, 2).with_a(20).with_b(4).with_seed(9);
        let settings = vec![Setting::new(3, 2), Setting::new(4, 2)];
        let cancels = vec![CancelToken::new(), CancelToken::new()];
        cancels[1].cancel();
        let out = fast_proclus_multi_outcomes(
            &data,
            &base,
            &settings,
            ReuseLevel::SharedGreedy,
            &Executor::Sequential,
            &NullRecorder,
            &cancels,
        );
        assert!(out[0].is_ok());
        assert!(matches!(
            out[1],
            Err(crate::error::ProclusError::Cancelled { .. })
        ));
    }

    #[test]
    fn outcomes_open_a_run_span_for_every_setting() {
        use proclus_telemetry::Telemetry;
        let data = blob_data(400);
        let base = Params::new(4, 2).with_a(20).with_b(4).with_seed(3);
        let settings = vec![Setting::new(3, 2), Setting::new(3, 99), Setting::new(4, 2)];
        let tel = Telemetry::new();
        let out = fast_proclus_multi_outcomes(
            &data,
            &base,
            &settings,
            ReuseLevel::SharedGreedy,
            &Executor::Sequential,
            &tel,
            &[],
        );
        assert_eq!(out.len(), 3);
        let report = tel.finish();
        // One root `run` span per setting — including the failed one — so
        // span i always belongs to setting i (per-job telemetry splitting).
        let runs: Vec<_> = report.spans.iter().filter(|s| s.name == "run").collect();
        assert_eq!(runs.len(), 3);
        assert!(runs[1].children.is_empty(), "failed setting has empty span");
    }

    #[test]
    fn shared_cache_reuses_rows_across_settings() {
        // With a shared M (level 2), the union of medoid rows is bounded by
        // |M|, so the second setting must add few or no rows. We proxy-check
        // via behavior: running twice the same settings list with WarmStart
        // completes and produces the same structure as SharedGreedy.
        let data = blob_data(400);
        let base = Params::new(4, 2).with_a(20).with_b(4).with_seed(77);
        let settings = vec![Setting::new(4, 2), Setting::new(4, 2)];
        let a = fast_proclus_multi(
            &data,
            &base,
            &settings,
            ReuseLevel::SharedGreedy,
            &Executor::Sequential,
        )
        .unwrap();
        assert_eq!(a.len(), 2);
        for r in &a {
            r.validate_structure(400, 4, 2).unwrap();
        }
    }
}
