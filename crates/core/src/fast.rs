//! FAST-PROCLUS (§3): cache distances to potential medoids across
//! iterations (`Dist`, `DistFound`) and maintain the per-dimension distance
//! sums `H` incrementally from the sphere delta `ΔL_i` (Theorems 3.1/3.2).

use std::collections::HashMap;

use proclus_telemetry::{counters, Recorder};

use crate::backend::CpuBackend;
use crate::cancel::CancelToken;
use crate::dataset::DataMatrix;
use crate::distance_simd::{debug_assert_finite, dist_rows_strip, euclidean_strip, fold_abs_diff};
use crate::driver::{run_full, XEngine};
use crate::error::Result;
use crate::par::Executor;
use crate::params::Params;
use crate::result::Clustering;

/// Fills `out[p] = ‖data_p − m‖₂` for all points (one `Dist` row),
/// in parallel — GPU Alg. 3 lines 1–3. Uses the 8-lane vectorized strip
/// kernel; results are bitwise-identical to the scalar `euclidean`.
pub(crate) fn compute_dist_row(data: &DataMatrix, m_row: &[f32], out: &mut [f32], exec: &Executor) {
    let d = data.d();
    let flat = data.flat();
    exec.for_each_slice(out, |off, sub| {
        euclidean_strip(&flat[off * d..(off + sub.len()) * d], d, m_row, sub);
    });
}

/// Fills a *batch* of `Dist` rows in one cache-blocked pass: workers own
/// column strips ([`Executor::for_each_strips`]), and within each strip the
/// point tile is read once and reused for every medoid row
/// ([`dist_rows_strip`]). Bitwise-identical to per-row [`compute_dist_row`].
pub(crate) fn compute_dist_rows(
    data: &DataMatrix,
    m_rows: &[&[f32]],
    outs: &mut [&mut [f32]],
    exec: &Executor,
) {
    debug_assert_eq!(m_rows.len(), outs.len());
    let d = data.d();
    let flat = data.flat();
    exec.for_each_strips(outs, |off, strips| {
        let len = strips.first().map(|s| s.len()).unwrap_or(0);
        dist_rows_strip(&flat[off * d..(off + len) * d], d, m_rows, strips);
    });
}

/// Applies Theorems 3.1/3.2: scans one cached `Dist` row for the points in
/// `ΔL_i` (those between the previous radius `δ'` and the current radius
/// `δ`) and folds their per-dimension Manhattan terms into `h_row` with the
/// sign `λ`. Updates `lsize` accordingly.
///
/// `ΔL_i = {p : δ' < ‖p − m_i‖ ≤ δ}` on increase, symmetric on decrease;
/// membership tests reuse the *cached* `f32` distances, so the point sets
/// are exactly consistent across iterations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn update_h_row(
    data: &DataMatrix,
    dist_row: &[f32],
    m_row: &[f32],
    delta_prev: f32,
    delta_cur: f32,
    h_row: &mut [f64],
    lsize: &mut usize,
    exec: &Executor,
) {
    if delta_cur == delta_prev {
        return;
    }
    // A NaN in the cached row would fail both `>` and `<=` and silently
    // drop the point from every ΔL shell forever.
    debug_assert_finite(dist_row, "update_h_row: cached Dist row");
    let d = data.d();
    let (lo, hi, lambda) = if delta_cur > delta_prev {
        (delta_prev, delta_cur, 1.0f64)
    } else {
        (delta_cur, delta_prev, -1.0f64)
    };
    let parts = exec.map_chunks(
        data.n(),
        || (vec![0.0f64; d], 0usize),
        |(dh, cnt), range| {
            for p in range {
                let dist = dist_row[p];
                if dist > lo && dist <= hi {
                    *cnt += 1;
                    fold_abs_diff(dh, data.row(p), m_row);
                }
            }
        },
    );
    for (dh, cnt) in parts {
        for (acc, v) in h_row.iter_mut().zip(&dh) {
            *acc += lambda * v;
        }
        if lambda > 0.0 {
            *lsize += cnt;
        } else {
            *lsize -= cnt;
        }
    }
}

/// The `Dist`/`H` cache of FAST-PROCLUS.
///
/// Rows are keyed by the medoid's *data index*, so the cache survives not
/// only across iterations but also across parameter settings with different
/// potential-medoid sets (§3.1 multi-parameter level 1): any point that
/// reappears as a potential medoid hits its old row. For a single run this
/// is exactly the paper's `Dist ∈ ℝ^{Bk×n}` + `DistFound` + `MIdx` scheme
/// (presence in the map *is* `DistFound`).
#[derive(Debug)]
pub(crate) struct DistCache {
    n: usize,
    d: usize,
    slot_of: HashMap<usize, usize>,
    dist: Vec<f32>,       // rows × n
    h: Vec<f64>,          // rows × d
    prev_delta: Vec<f32>, // per row: δ at last usage t'
    lsize: Vec<usize>,    // per row: |L| at last usage
}

impl DistCache {
    pub(crate) fn new(n: usize, d: usize) -> Self {
        Self {
            n,
            d,
            slot_of: HashMap::new(),
            dist: Vec::new(),
            h: Vec::new(),
            prev_delta: Vec::new(),
            lsize: Vec::new(),
        }
    }

    /// Number of cached rows (= distinct medoids whose distances were ever
    /// computed; the paper's `DistFound` count).
    pub(crate) fn rows(&self) -> usize {
        self.prev_delta.len()
    }

    /// Logical bytes held by the cache (for space-usage reporting).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn bytes(&self) -> usize {
        self.dist.len() * 4 + self.h.len() * 8 + self.rows() * (4 + 8)
    }

    /// Returns the row for medoid `m_point`, computing the distance row on
    /// first use. The `bool` reports a cache miss (fresh row). The engine
    /// hot path goes through the batched [`DistCache::ensure_rows`]; this
    /// single-row form remains for the Theorem 3.1/3.2 unit proofs.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn ensure_row(
        &mut self,
        data: &DataMatrix,
        m_point: usize,
        exec: &Executor,
    ) -> (usize, bool) {
        if let Some(&row) = self.slot_of.get(&m_point) {
            return (row, false);
        }
        let row = self.rows();
        self.slot_of.insert(m_point, row);
        self.dist.resize((row + 1) * self.n, 0.0);
        self.h.resize((row + 1) * self.d, 0.0);
        // Sentinel: a fresh row has "previous radius" below zero so the
        // first ΔL scan `dist > δ'` also admits points at distance exactly
        // 0 (the medoid itself).
        self.prev_delta.push(-1.0);
        self.lsize.push(0);
        let m_row: Vec<f32> = data.row(m_point).to_vec();
        compute_dist_row(
            data,
            &m_row,
            &mut self.dist[row * self.n..(row + 1) * self.n],
            exec,
        );
        (row, true)
    }

    /// Batched [`DistCache::ensure_row`]: resolves every medoid's row in
    /// one pass, computing *all* missing rows with one cache-blocked sweep
    /// of the data ([`compute_dist_rows`]) instead of one full-matrix
    /// stream per miss. Returns `(row, fresh)` per medoid, in order.
    pub(crate) fn ensure_rows(
        &mut self,
        data: &DataMatrix,
        m_points: &[usize],
        exec: &Executor,
    ) -> Vec<(usize, bool)> {
        let first_new = self.rows();
        let mut fresh_points: Vec<usize> = Vec::new();
        let out: Vec<(usize, bool)> = m_points
            .iter()
            .map(|&m| {
                if let Some(&row) = self.slot_of.get(&m) {
                    (row, false)
                } else {
                    let row = first_new + fresh_points.len();
                    self.slot_of.insert(m, row);
                    fresh_points.push(m);
                    (row, true)
                }
            })
            .collect();
        if fresh_points.is_empty() {
            return out;
        }
        let rows_after = first_new + fresh_points.len();
        self.dist.resize(rows_after * self.n, 0.0);
        self.h.resize(rows_after * self.d, 0.0);
        // Same fresh-row sentinel as ensure_row: δ' < 0 admits distance 0.
        self.prev_delta.resize(rows_after, -1.0);
        self.lsize.resize(rows_after, 0);
        let m_rows: Vec<&[f32]> = fresh_points.iter().map(|&m| data.row(m)).collect();
        let mut outs: Vec<&mut [f32]> =
            self.dist[first_new * self.n..].chunks_mut(self.n).collect();
        compute_dist_rows(data, &m_rows, &mut outs, exec);
        out
    }

    pub(crate) fn dist_row(&self, row: usize) -> &[f32] {
        let dist = &self.dist[row * self.n..(row + 1) * self.n];
        debug_assert_finite(dist, "DistCache::dist_row");
        dist
    }

    /// Current sphere size `|L|` of a row (telemetry: ΔL sizes are the
    /// difference of this value across an [`DistCache::advance_row`]).
    pub(crate) fn lsize(&self, row: usize) -> usize {
        self.lsize[row]
    }

    /// Advances row `row` from its previous radius to `delta_cur`,
    /// returning the averaged `X` values and the sphere size.
    pub(crate) fn advance_row(
        &mut self,
        data: &DataMatrix,
        row: usize,
        m_point: usize,
        delta_cur: f32,
        exec: &Executor,
    ) -> (Vec<f64>, usize) {
        let d = self.d;
        let m_row: Vec<f32> = data.row(m_point).to_vec();
        let delta_prev = self.prev_delta[row];
        // Split borrows: the dist row is read-only while h is updated.
        let (dist, h) = (&self.dist, &mut self.h);
        let dist_row = &dist[row * self.n..(row + 1) * self.n];
        debug_assert_finite(dist_row, "DistCache::advance_row");
        let h_row = &mut h[row * d..(row + 1) * d];
        let mut lsize = self.lsize[row];
        update_h_row(
            data, dist_row, &m_row, delta_prev, delta_cur, h_row, &mut lsize, exec,
        );
        self.prev_delta[row] = delta_cur;
        self.lsize[row] = lsize;
        let x: Vec<f64> = if lsize > 0 {
            h_row.iter().map(|&v| v / lsize as f64).collect()
        } else {
            vec![0.0; d]
        };
        (x, lsize)
    }
}

/// The FAST-PROCLUS `X` engine.
pub(crate) struct FastEngine {
    pub(crate) cache: DistCache,
}

impl FastEngine {
    pub(crate) fn new(data: &DataMatrix) -> Self {
        Self {
            cache: DistCache::new(data.n(), data.d()),
        }
    }
}

impl XEngine for FastEngine {
    fn x_matrix(
        &mut self,
        data: &DataMatrix,
        m_data: &[usize],
        mcur: &[usize],
        exec: &Executor,
        rec: &dyn Recorder,
    ) -> (Vec<f64>, Vec<usize>) {
        let k = mcur.len();
        let d = data.d();
        let medoids: Vec<usize> = mcur.iter().map(|&mi| m_data[mi]).collect();

        // Ensure all rows exist (DistFound check, §3). A miss costs one full
        // Dist row (n distances); a hit costs nothing — Theorem 3.1. All
        // misses of the iteration are computed in one cache-blocked batch.
        let rows: Vec<usize> = self
            .cache
            .ensure_rows(data, &medoids, exec)
            .into_iter()
            .map(|(row, fresh)| {
                if fresh {
                    rec.add(counters::DIST_CACHE_MISSES, 1);
                    rec.add(counters::DISTANCES_COMPUTED, data.n() as u64);
                } else {
                    rec.add(counters::DIST_CACHE_HITS, 1);
                }
                row
            })
            .collect();

        // δ_i from the cached rows: same f32 values the baseline computes
        // directly, so the search path is identical.
        let mut x = vec![0.0f64; k * d];
        let mut lsz = vec![0usize; k];
        for i in 0..k {
            debug_assert_finite(self.cache.dist_row(rows[i]), "FastEngine δ-scan");
            let mut delta = f32::INFINITY;
            #[allow(clippy::needless_range_loop)]
            for j in 0..k {
                if i != j {
                    let dist = self.cache.dist_row(rows[i])[medoids[j]];
                    if dist < delta {
                        delta = dist;
                    }
                }
            }
            let l_before = self.cache.lsize(rows[i]);
            let (xi, li) = self
                .cache
                .advance_row(data, rows[i], medoids[i], delta, exec);
            rec.add(counters::DELTA_L_POINTS, l_before.abs_diff(li) as u64);
            x[i * d..(i + 1) * d].copy_from_slice(&xi);
            lsz[i] = li;
        }
        (x, lsz)
    }
}

/// Support hooks exposing the FAST internals to external benchmarks (the
/// `proclus-bench` crate measures the ΔL update in isolation). Not part of
/// the stable API.
pub mod bench_support {
    use super::*;

    /// Computes one `Dist` row (distances from every point to `m_point`).
    pub fn dist_row(data: &DataMatrix, m_point: usize, exec: &Executor) -> Vec<f32> {
        let mut out = vec![0.0f32; data.n()];
        compute_dist_row(data, data.row(m_point).to_vec().as_slice(), &mut out, exec);
        out
    }

    /// Applies one ΔL update (Theorem 3.2) to an `H` row.
    #[allow(clippy::too_many_arguments)]
    pub fn h_update(
        data: &DataMatrix,
        dist_row: &[f32],
        m_row: &[f32],
        delta_prev: f32,
        delta_cur: f32,
        h_row: &mut [f64],
        lsize: &mut usize,
        exec: &Executor,
    ) {
        update_h_row(
            data, dist_row, m_row, delta_prev, delta_cur, h_row, lsize, exec,
        );
    }
}

pub(crate) fn run_fast(
    data: &DataMatrix,
    params: &Params,
    exec: &Executor,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> Result<Clustering> {
    params.validate(data)?;
    let mut backend = CpuBackend::with_engine(data, *exec, Box::new(FastEngine::new(data)));
    run_full(&mut backend, params, rec, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::run_baseline;
    use crate::distance::euclidean;
    use crate::phases::compute_l::{compute_x_baseline, medoid_deltas};

    fn proclus(data: &DataMatrix, params: &Params) -> Result<Clustering> {
        run_baseline(
            data,
            params,
            &Executor::Sequential,
            &proclus_telemetry::NullRecorder,
            &CancelToken::new(),
        )
    }

    fn fast_proclus(data: &DataMatrix, params: &Params) -> Result<Clustering> {
        run_fast(
            data,
            params,
            &Executor::Sequential,
            &proclus_telemetry::NullRecorder,
            &CancelToken::new(),
        )
    }

    fn fast_proclus_par(data: &DataMatrix, params: &Params, threads: usize) -> Result<Clustering> {
        run_fast(
            data,
            params,
            &Executor::Parallel { threads },
            &proclus_telemetry::NullRecorder,
            &CancelToken::new(),
        )
    }

    fn blob_data(n: usize) -> DataMatrix {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let c = if i % 3 == 0 {
                    0.0f32
                } else if i % 3 == 1 {
                    40.0
                } else {
                    80.0
                };
                vec![
                    c + ((i * 3) % 13) as f32 * 0.1,
                    c + ((i * 5) % 11) as f32 * 0.1,
                    ((i * 7) % 100) as f32,
                ]
            })
            .collect();
        DataMatrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn incremental_h_matches_direct_recomputation() {
        // Theorem 3.2: advance a row through a sequence of radii and compare
        // X with the from-scratch baseline at every step.
        let data = blob_data(200);
        let exec = Executor::Sequential;
        let mut cache = DistCache::new(data.n(), data.d());
        let m_point = 42usize;
        let (row, fresh) = cache.ensure_row(&data, m_point, &exec);
        assert!(fresh);

        for &delta in &[5.0f32, 20.0, 3.0, 60.0, 0.5, 60.0, 60.0] {
            let (x_inc, l_inc) = cache.advance_row(&data, row, m_point, delta, &exec);
            // Direct recomputation over the same sphere.
            let m_row = data.row(m_point);
            let mut h = vec![0.0f64; data.d()];
            let mut l = 0usize;
            for p in 0..data.n() {
                if euclidean(data.row(p), m_row) <= delta {
                    l += 1;
                    for j in 0..data.d() {
                        h[j] += ((data.get(p, j) - m_row[j]) as f64).abs();
                    }
                }
            }
            assert_eq!(l_inc, l, "sphere size at delta {delta}");
            for j in 0..data.d() {
                let direct = if l > 0 { h[j] / l as f64 } else { 0.0 };
                assert!(
                    (x_inc[j] - direct).abs() < 1e-9,
                    "X mismatch at delta {delta}, dim {j}: {} vs {direct}",
                    x_inc[j]
                );
            }
        }
    }

    #[test]
    fn cache_hits_do_not_recompute() {
        let data = blob_data(100);
        let exec = Executor::Sequential;
        let mut cache = DistCache::new(data.n(), data.d());
        let (r1, fresh1) = cache.ensure_row(&data, 5, &exec);
        let (r2, fresh2) = cache.ensure_row(&data, 5, &exec);
        assert_eq!(r1, r2);
        assert!(fresh1 && !fresh2);
        assert_eq!(cache.rows(), 1);
    }

    #[test]
    fn engine_x_matches_baseline_x() {
        let data = blob_data(300);
        let exec = Executor::Sequential;
        let m_data: Vec<usize> = vec![0, 10, 50, 100, 150, 200, 250];
        let mcur = vec![0usize, 2, 5];
        let medoids: Vec<usize> = mcur.iter().map(|&mi| m_data[mi]).collect();

        let mut engine = FastEngine::new(&data);
        let (x_fast, l_fast) = engine.x_matrix(
            &data,
            &m_data,
            &mcur,
            &exec,
            &proclus_telemetry::NullRecorder,
        );

        let deltas = medoid_deltas(&data, &medoids);
        let (x_base, l_base) = compute_x_baseline(&data, &medoids, &deltas, &exec);

        assert_eq!(l_fast, l_base);
        for (a, b) in x_fast.iter().zip(&x_base) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn fast_equals_baseline_seed_for_seed() {
        let data = blob_data(450);
        let params = Params::new(3, 2).with_a(30).with_b(5).with_seed(11);
        let base = proclus(&data, &params).unwrap();
        let fast = fast_proclus(&data, &params).unwrap();
        assert_eq!(base.medoids, fast.medoids);
        assert_eq!(base.subspaces, fast.subspaces);
        assert_eq!(base.labels, fast.labels);
        assert_eq!(base.iterations, fast.iterations);
        assert!((base.cost - fast.cost).abs() < 1e-9);
    }

    #[test]
    fn fast_par_equals_fast_seq() {
        let data = blob_data(450);
        let params = Params::new(3, 2).with_a(30).with_b(5).with_seed(13);
        let seq = fast_proclus(&data, &params).unwrap();
        let par = fast_proclus_par(&data, &params, 4).unwrap();
        assert_eq!(seq.medoids, par.medoids);
        assert_eq!(seq.labels, par.labels);
    }

    #[test]
    fn batched_ensure_rows_matches_per_row_bitwise() {
        let data = blob_data(237); // odd n exercises the remainder lanes
        for threads in [1usize, 4] {
            let exec = if threads > 1 {
                Executor::Parallel { threads }
            } else {
                Executor::Sequential
            };
            let medoids = [3usize, 50, 111, 200, 50]; // one duplicate: a hit
            let mut per_row = DistCache::new(data.n(), data.d());
            let singles: Vec<(usize, bool)> = medoids
                .iter()
                .map(|&m| per_row.ensure_row(&data, m, &exec))
                .collect();
            let mut batched = DistCache::new(data.n(), data.d());
            let batch = batched.ensure_rows(&data, &medoids, &exec);
            assert_eq!(batch, singles);
            for &(row, _) in &batch {
                let (a, b) = (per_row.dist_row(row), batched.dist_row(row));
                assert!(
                    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "row {row} diverged (threads {threads})"
                );
            }
        }
    }

    #[test]
    fn cache_bytes_grow_with_rows() {
        let data = blob_data(100);
        let exec = Executor::Sequential;
        let mut cache = DistCache::new(data.n(), data.d());
        let b0 = cache.bytes();
        cache.ensure_row(&data, 1, &exec);
        let b1 = cache.bytes();
        cache.ensure_row(&data, 2, &exec);
        let b2 = cache.bytes();
        assert!(b0 < b1 && b1 < b2);
        assert_eq!(b2 - b1, b1 - b0, "per-row cost is constant");
    }
}
