//! The dataset container: a dense row-major `n × d` matrix of `f32`.
//!
//! PROCLUS treats the data as read-only throughout; values are `f32` to
//! match the GPU implementations, while all statistics derived from them
//! (`H`, `X`, `Y`, `σ`, centroids, cost) accumulate in `f64` so that
//! incremental and recomputed variants agree to well below any decision
//! threshold (see DESIGN.md §4).

use crate::error::{ProclusError, Result};

/// A dense, row-major `n × d` data matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DataMatrix {
    values: Box<[f32]>,
    n: usize,
    d: usize,
}

impl DataMatrix {
    /// Builds a matrix from a flat row-major buffer of length `n · d`.
    pub fn from_flat(values: Vec<f32>, n: usize, d: usize) -> Result<Self> {
        if n == 0 || d == 0 {
            return Err(ProclusError::data(format!(
                "dataset must be non-empty, got {n} x {d}"
            )));
        }
        if values.len() != n * d {
            return Err(ProclusError::data(format!(
                "flat buffer has {} values, expected {n} x {d} = {}",
                values.len(),
                n * d
            )));
        }
        if let Some(bad) = values.iter().position(|v| !v.is_finite()) {
            return Err(ProclusError::data(format!(
                "non-finite value at flat index {bad} (point {}, dim {})",
                bad / d,
                bad % d
            )));
        }
        Ok(Self {
            values: values.into_boxed_slice(),
            n,
            d,
        })
    }

    /// Builds a matrix from per-point rows, which must all share one length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        let n = rows.len();
        let d = rows.first().map(|r| r.len()).unwrap_or(0);
        if rows.iter().any(|r| r.len() != d) {
            return Err(ProclusError::data("ragged rows".to_string()));
        }
        let mut flat = Vec::with_capacity(n * d);
        for r in rows {
            flat.extend_from_slice(r);
        }
        Self::from_flat(flat, n, d)
    }

    /// Number of points.
    #[inline(always)]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of dimensions.
    #[inline(always)]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Row `p` as a slice of length `d`.
    #[inline(always)]
    pub fn row(&self, p: usize) -> &[f32] {
        &self.values[p * self.d..(p + 1) * self.d]
    }

    /// Value of point `p` in dimension `j`.
    #[inline(always)]
    pub fn get(&self, p: usize, j: usize) -> f32 {
        self.values[p * self.d + j]
    }

    /// The whole matrix as a flat row-major slice.
    #[inline]
    pub fn flat(&self) -> &[f32] {
        &self.values
    }

    /// Min–max normalizes every dimension into `[0, 1]` in place, as the
    /// paper does for all datasets (§5). Constant dimensions map to `0`.
    pub fn minmax_normalize(&mut self) {
        let d = self.d;
        let mut lo = vec![f32::INFINITY; d];
        let mut hi = vec![f32::NEG_INFINITY; d];
        for p in 0..self.n {
            let row = &self.values[p * d..(p + 1) * d];
            for j in 0..d {
                lo[j] = lo[j].min(row[j]);
                hi[j] = hi[j].max(row[j]);
            }
        }
        for p in 0..self.n {
            let row = &mut self.values[p * d..(p + 1) * d];
            for j in 0..d {
                let range = hi[j] - lo[j];
                row[j] = if range > 0.0 {
                    (row[j] - lo[j]) / range
                } else {
                    0.0
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flat_validates_shape() {
        assert!(DataMatrix::from_flat(vec![1.0; 6], 2, 3).is_ok());
        assert!(DataMatrix::from_flat(vec![1.0; 5], 2, 3).is_err());
        assert!(DataMatrix::from_flat(vec![], 0, 3).is_err());
    }

    #[test]
    fn rejects_non_finite() {
        assert!(DataMatrix::from_flat(vec![1.0, f32::NAN], 1, 2).is_err());
        assert!(DataMatrix::from_flat(vec![1.0, f32::INFINITY], 2, 1).is_err());
    }

    #[test]
    fn row_and_get_agree() {
        let m = DataMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3).unwrap();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(DataMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
    }

    #[test]
    fn minmax_maps_each_dim_to_unit_interval() {
        let mut m = DataMatrix::from_flat(vec![0.0, 10.0, 5.0, 20.0, 10.0, 30.0], 3, 2).unwrap();
        m.minmax_normalize();
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(2, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 1), 0.5);
        assert_eq!(m.get(2, 1), 1.0);
    }

    #[test]
    fn minmax_constant_dimension_becomes_zero() {
        let mut m = DataMatrix::from_flat(vec![7.0, 1.0, 7.0, 2.0], 2, 2).unwrap();
        m.minmax_normalize();
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(1, 0), 0.0);
    }
}
