//! Error type for the PROCLUS algorithm family.

use std::fmt;

/// Result alias for PROCLUS operations.
pub type Result<T> = std::result::Result<T, ProclusError>;

/// Errors raised when configuring or running PROCLUS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProclusError {
    /// Parameter validation failed (see the message for the constraint).
    InvalidParams {
        /// Which constraint was violated and with what values.
        reason: String,
    },
    /// `l` exceeds the dimensionality of the data the parameters target —
    /// caught at build time by [`crate::ParamsBuilder`] (via its `dims`
    /// hint or `build_for`) instead of deep inside the run.
    DimensionalityExceeded {
        /// Requested average number of dimensions per cluster.
        l: usize,
        /// Dimensionality of the dataset (or the builder's declared hint).
        d: usize,
    },
    /// The dataset is unusable (empty, zero-dimensional, or non-finite).
    InvalidData {
        /// What is wrong with the data.
        reason: String,
    },
    /// The requested configuration is valid but not available through this
    /// entry point (e.g. `Backend::Gpu` via `proclus::run`, which has no
    /// device — use `proclus_gpu::run`).
    Unsupported {
        /// What is unavailable and where to find it.
        reason: String,
    },
    /// A device-side failure surfaced by a GPU backend (converted from the
    /// `proclus-gpu` crate's error type).
    Device {
        /// The device error message.
        reason: String,
    },
    /// The run was stopped cooperatively before completion — either the
    /// caller's [`crate::CancelToken`] was cancelled or its deadline
    /// passed. Checked at phase boundaries, so no partial state escapes.
    Cancelled {
        /// Why the run stopped (`cancelled by caller` / `deadline
        /// exceeded`).
        reason: String,
    },
}

impl ProclusError {
    pub(crate) fn params(reason: impl Into<String>) -> Self {
        ProclusError::InvalidParams {
            reason: reason.into(),
        }
    }

    pub(crate) fn data(reason: impl Into<String>) -> Self {
        ProclusError::InvalidData {
            reason: reason.into(),
        }
    }

    pub(crate) fn unsupported(reason: impl Into<String>) -> Self {
        ProclusError::Unsupported {
            reason: reason.into(),
        }
    }

    pub(crate) fn cancelled(reason: impl Into<String>) -> Self {
        ProclusError::Cancelled {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ProclusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProclusError::InvalidParams { reason } => write!(f, "invalid parameters: {reason}"),
            ProclusError::DimensionalityExceeded { l, d } => write!(
                f,
                "invalid parameters: l = {l} exceeds the data dimensionality d = {d}"
            ),
            ProclusError::InvalidData { reason } => write!(f, "invalid data: {reason}"),
            ProclusError::Unsupported { reason } => write!(f, "unsupported: {reason}"),
            ProclusError::Device { reason } => write!(f, "device error: {reason}"),
            ProclusError::Cancelled { reason } => write!(f, "cancelled: {reason}"),
        }
    }
}

impl std::error::Error for ProclusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_reason() {
        let e = ProclusError::params("k must be >= 2");
        assert!(e.to_string().contains("k must be >= 2"));
    }
}
