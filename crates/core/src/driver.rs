//! The backend-generic medoid-search driver.
//!
//! All PROCLUS variants share the control flow of Alg. 1 and differ only in
//! *where the per-phase numerics run* — on the host (every CPU variant,
//! which additionally differ in how `X` is produced: recomputed from
//! scratch for the baseline, served from the `Dist`/`H` caches for FAST
//! §3, or from the slot-local caches for FAST* §3.2), on one simulated
//! device, or partitioned across several. The decision logic — dimension
//! picking, bad-medoid selection, replacement draws, cost comparison,
//! termination — lives here once, on top of the [`Backend`] phase
//! primitives, so for equal seeds every backend visits the same medoid
//! sequence. That is what guarantees the seed-for-seed equivalence the
//! paper asserts ("all our results are fully correct with respect to the
//! PROCLUS definition", §4.1).
//!
//! The driver is also where the phase telemetry is recorded: every phase of
//! Alg. 1 runs inside a span, and the algorithm counters (distances,
//! cache hits, `ΔL` sizes, reassignments, replacements) are attributed to
//! the innermost open span. Counters are computed from closed-form sizes at
//! the orchestration level — never inside the parallel hot loops — so
//! instrumentation cannot perturb the seeded search path. Backends with a
//! simulated clock ([`Backend::clock_us`]) get every numeric phase span
//! annotated with the simulated microseconds it consumed.

use proclus_telemetry::{attrs, counters, span, Recorder};

use crate::backend::Backend;
use crate::cancel::CancelToken;
use crate::dataset::DataMatrix;
use crate::error::Result;
use crate::multi_param::{cancel_for, derive_params, warm_start_mcur, ReuseLevel, Setting};
use crate::par::Executor;
use crate::params::Params;
use crate::phases::bad_medoids::{compute_bad_medoids, replace_bad_medoids};
use crate::phases::initialization::sample_data_prime;
use crate::result::Clustering;
use crate::rng::ProclusRng;

/// Strategy object producing `X` and `|L|` for the current medoids — how
/// the CPU backend varies per algorithm.
///
/// `m_data` holds the data indices of all potential medoids `M`; `mcur`
/// holds the current medoids as indices into `m_data` (the paper's `MIdx`).
pub(crate) trait XEngine {
    fn x_matrix(
        &mut self,
        data: &DataMatrix,
        m_data: &[usize],
        mcur: &[usize],
        exec: &Executor,
        rec: &dyn Recorder,
    ) -> (Vec<f64>, Vec<usize>);
}

/// Opens a phase span, runs `f` against the backend, and annotates the
/// span with the simulated device time the phase consumed (backends
/// without a clock get no annotation).
fn phase<T, B: Backend + ?Sized>(
    backend: &mut B,
    rec: &dyn Recorder,
    name: &'static str,
    f: impl FnOnce(&mut B) -> Result<T>,
) -> Result<T> {
    let g = span(rec, name);
    let t0 = backend.clock_us();
    let out = f(backend)?;
    if let (Some(a), Some(b)) = (t0, backend.clock_us()) {
        rec.annotate(g.id(), attrs::SIM_US, b - a);
    }
    Ok(out)
}

/// Runs the greedy farthest-point pass inside an `initialization` span,
/// recording the closed-form distance count (|M|−1 picks, each evaluating
/// |S| candidate distances). Grid runners with a shared sample call this
/// directly; single runs go through [`initialization_phase`].
pub fn greedy_phase<B: Backend + ?Sized>(
    backend: &mut B,
    sample: &[usize],
    count: usize,
    rng: &mut ProclusRng,
    rec: &dyn Recorder,
) -> Result<Vec<usize>> {
    let g = span(rec, "initialization");
    let t0 = backend.clock_us();
    rec.add(
        counters::DISTANCES_COMPUTED,
        (count.saturating_sub(1) * sample.len()) as u64,
    );
    let m = backend.greedy(sample, count, rng, rec)?;
    if let (Some(a), Some(b)) = (t0, backend.clock_us()) {
        rec.annotate(g.id(), attrs::SIM_US, b - a);
    }
    Ok(m)
}

/// Runs the initialization phase: sample `Data'` and greedily select `M`.
/// Returns the data indices of the potential medoids.
pub fn initialization_phase<B: Backend + ?Sized>(
    backend: &mut B,
    params: &Params,
    rng: &mut ProclusRng,
    rec: &dyn Recorder,
) -> Result<Vec<usize>> {
    let n = backend.n();
    let sample = sample_data_prime(rng, n, params.sample_size(n));
    greedy_phase(backend, &sample, params.num_potential_medoids(n), rng, rec)
}

/// Runs the iterative + refinement phases given an already-selected `M`.
///
/// `init_mcur` (indices into `m_data`) overrides the random initial medoid
/// set — used by multi-parameter level 3 to warm-start from the previous
/// setting's best medoids (§3.1). Returns the clustering together with the
/// best medoids as indices into `m_data`, which the warm start needs.
///
/// `cancel` is checked cooperatively at phase boundaries (top of every
/// iteration and before refinement); a tripped token aborts with
/// [`crate::ProclusError::Cancelled`] and no partial result. Backends
/// whose phase primitives are internally long-running poll their own
/// token clone as well (see the [`Backend`] contract).
#[allow(clippy::too_many_arguments)]
pub fn run_core<B: Backend + ?Sized>(
    backend: &mut B,
    params: &Params,
    rng: &mut ProclusRng,
    m_data: &[usize],
    init_mcur: Option<Vec<usize>>,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> Result<(Clustering, Vec<usize>)> {
    let k = params.k;
    let n = backend.n();
    let m_len = m_data.len();

    let mut mcur = match init_mcur {
        Some(m) => {
            debug_assert_eq!(m.len(), k);
            m
        }
        None => rng.sample_distinct(m_len, k),
    };

    let mut best_cost = f64::INFINITY;
    let mut best_mcur = mcur.clone();
    let mut best_sizes: Vec<usize> = Vec::new();
    let mut itr = 0usize;
    let mut total = 0usize;
    let mut converged = false;
    // Previous iteration's assignment, for the points_reassigned counter
    // (only materialized when a real recorder is attached).
    let mut prev_labels: Option<Vec<i32>> = None;

    // Iterative phase (Alg. 1 lines 5–14).
    loop {
        cancel.check()?;
        let iter_span = span(rec, "iteration");
        let medoids: Vec<usize> = mcur.iter().map(|&mi| m_data[mi]).collect();

        phase(backend, rec, "compute_l", |b| {
            b.compute_x(m_data, &mcur, rec)
        })?;
        let dims = phase(backend, rec, "find_dimensions", |b| {
            b.find_dims(k, params.l, rec)
        })?;
        let sizes = phase(backend, rec, "assign_points", |b| {
            rec.add(counters::SEGMENTAL_DISTANCES, (n * k) as u64);
            b.assign(&medoids, &dims, rec)
        })?;
        let cost = phase(backend, rec, "evaluate_clusters", |b| {
            b.evaluate(&dims, &sizes, rec)
        })?;
        total += 1;
        rec.add(counters::ITERATIONS, 1);

        // Label churn: a backend readback only happens when telemetry is
        // on (the first iteration assigns all n points).
        if rec.enabled() {
            let labels = backend.labels()?;
            let changed = match &prev_labels {
                None => n as u64,
                Some(prev) => prev.iter().zip(&labels).filter(|(a, b)| a != b).count() as u64,
            };
            rec.add(counters::POINTS_REASSIGNED, changed);
            prev_labels = Some(labels);
        }

        if cost < best_cost {
            best_cost = cost;
            best_mcur = mcur.clone();
            best_sizes = sizes;
            backend.save_best()?;
            itr = 0;
        } else {
            itr += 1;
        }

        if itr >= params.itr_pat {
            converged = true;
            break;
        }
        if total >= params.max_total_iterations {
            break;
        }

        let g = span(rec, "bad_medoids");
        let bad = compute_bad_medoids(&best_sizes, n, params.min_dev, params.bad_medoid_rule);
        rec.add(counters::MEDOIDS_REPLACED, bad.len() as u64);
        mcur = replace_bad_medoids(&best_mcur, &bad, m_len, rng);
        drop(g);
        drop(iter_span);
    }

    // Refinement phase (Alg. 1 lines 15–19): L ← CBest.
    cancel.check()?;
    let refine_span = span(rec, "refinement");
    let medoids: Vec<usize> = best_mcur.iter().map(|&mi| m_data[mi]).collect();

    phase(backend, rec, "compute_l", |b| b.x_from_best(&medoids, rec))?;
    let dims = phase(backend, rec, "find_dimensions", |b| {
        b.find_dims(k, params.l, rec)
    })?;
    let sizes = phase(backend, rec, "assign_points", |b| {
        rec.add(counters::SEGMENTAL_DISTANCES, (n * k) as u64);
        b.assign(&medoids, &dims, rec)
    })?;
    let refined_cost = phase(backend, rec, "evaluate_clusters", |b| {
        b.evaluate(&dims, &sizes, rec)
    })?;
    phase(backend, rec, "remove_outliers", |b| {
        rec.add(counters::SEGMENTAL_DISTANCES, (n * k) as u64);
        b.remove_outliers(&medoids, &dims, rec)
    })?;
    let labels = backend.labels()?;
    drop(refine_span);

    Ok((
        Clustering {
            medoids,
            subspaces: dims,
            labels,
            cost: best_cost,
            refined_cost,
            iterations: total,
            converged,
        },
        best_mcur,
    ))
}

/// Convenience: full run (init + iterate + refine) against a backend,
/// wrapped in one `run` span. Every public entry point — `proclus::run`,
/// `proclus_gpu::run_on`, the grid runners — funnels through here (or
/// through [`run_core`] directly), so the cancellation discipline is
/// uniform across one-shot and served paths. Parameter validation happens
/// in the entry points, *before* a backend is built.
pub fn run_full<B: Backend + ?Sized>(
    backend: &mut B,
    params: &Params,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> Result<Clustering> {
    cancel.check()?;
    let run_span = span(rec, "run");
    let t0 = backend.clock_us();
    let mut rng = ProclusRng::new(params.seed);
    let out = initialization_phase(backend, params, &mut rng, rec).and_then(|m_data| {
        run_core(backend, params, &mut rng, &m_data, None, rec, cancel).map(|(c, _)| c)
    });
    if let (Some(a), Some(b)) = (t0, backend.clock_us()) {
        rec.annotate(run_span.id(), attrs::SIM_US, b - a);
    }
    out
}

/// The shared-state grid loop for reuse levels ≥ 1 (§3.1): one sample `S`
/// (sized for the largest valid `k`), one backend whose caches persist
/// across settings, one greedy pass at level ≥ 2, warm starts at level 3.
///
/// `validity[i]` is setting `i`'s pre-computed validation outcome (CPU and
/// GPU validate differently); invalid settings are skipped with their error
/// in the result slot and consume no RNG draws. Every setting — failed
/// ones included — is recorded as its own root `run` span so span `i`
/// always belongs to setting `i`. The shared greedy pass, when present, is
/// a free-standing `initialization` span before the first run (batch
/// overhead attributable to no single setting). `cancels` is either empty
/// or one token per setting.
#[allow(clippy::too_many_arguments)]
pub fn grid_core_shared<B: Backend + ?Sized>(
    backend: &mut B,
    base: &Params,
    settings: &[Setting],
    level: ReuseLevel,
    validity: &[Result<()>],
    rng: &mut ProclusRng,
    rec: &dyn Recorder,
    cancels: &[CancelToken],
) -> Vec<Result<Clustering>> {
    debug_assert!(level >= ReuseLevel::SharedCache);
    debug_assert_eq!(validity.len(), settings.len());
    let mut results: Vec<Result<Clustering>> = Vec::with_capacity(settings.len());

    let k_max = settings
        .iter()
        .zip(validity)
        .filter(|(_, v)| v.is_ok())
        .map(|(s, _)| s.k)
        .max();
    let Some(k_max) = k_max else {
        // Nothing runnable: report per-setting errors, touch no RNG.
        for v in validity {
            let _run = span(rec, "run");
            results.push(match v {
                Err(e) => Err(e.clone()),
                Ok(()) => Err(crate::error::ProclusError::unsupported(
                    "grid with no valid settings",
                )),
            });
        }
        return results;
    };
    let n = backend.n();
    let sample = sample_data_prime(rng, n, (base.a * k_max).min(n));

    // Level ≥ 2: one greedy pass for the largest k; constant |M| = B·k_max.
    let shared_m: Option<Vec<usize>> = if level >= ReuseLevel::SharedGreedy {
        let count = (base.b * k_max).min(sample.len());
        match greedy_phase(backend, &sample, count, rng, rec) {
            Ok(m) => Some(m),
            Err(e) => {
                // A failed shared pass fails every runnable setting.
                for v in validity {
                    let _run = span(rec, "run");
                    results.push(match v {
                        Err(ve) => Err(ve.clone()),
                        Ok(()) => Err(e.clone()),
                    });
                }
                return results;
            }
        }
    } else {
        None
    };

    let mut prev_best_mcur: Option<Vec<usize>> = None;
    for (i, &s) in settings.iter().enumerate() {
        let run_span = span(rec, "run");
        if let Err(e) = &validity[i] {
            results.push(Err(e.clone()));
            continue;
        }
        let cancel = cancel_for(cancels, i);
        if let Err(e) = cancel.check() {
            results.push(Err(e));
            continue;
        }
        let t0 = backend.clock_us();
        let params = derive_params(base, s);
        let m_data: Vec<usize> = match &shared_m {
            Some(m) => m.clone(),
            None => {
                let count = (base.b * s.k).min(sample.len());
                match greedy_phase(backend, &sample, count, rng, rec) {
                    Ok(m) => m,
                    Err(e) => {
                        results.push(Err(e));
                        continue;
                    }
                }
            }
        };

        // Level 3: seed MCur from the previous setting's best medoids.
        let init_mcur = if level >= ReuseLevel::WarmStart {
            prev_best_mcur
                .as_ref()
                .map(|prev| warm_start_mcur(prev, s.k, m_data.len(), rng))
        } else {
            None
        };

        match run_core(backend, &params, rng, &m_data, init_mcur, rec, &cancel) {
            Ok((c, best_mcur)) => {
                prev_best_mcur = Some(best_mcur);
                results.push(Ok(c));
            }
            Err(e) => results.push(Err(e)),
        }
        if let (Some(a), Some(b)) = (t0, backend.clock_us()) {
            rec.annotate(run_span.id(), attrs::SIM_US, b - a);
        }
    }
    results
}
