//! The medoid-search driver shared by every CPU variant.
//!
//! All PROCLUS variants differ *only* in how the averaged per-dimension
//! distance matrix `X` (and the sphere sizes `|L_i|`) are produced each
//! iteration — recomputed from scratch (baseline), served from the
//! `Dist`/`H` caches (FAST, §3), or from the slot-local caches (FAST*,
//! §3.2). Everything else — dimension selection, assignment, evaluation,
//! bad-medoid replacement, termination, refinement — is identical, so it
//! lives here once. That is also what guarantees the seed-for-seed
//! equivalence the paper asserts ("all our results are fully correct with
//! respect to the PROCLUS definition", §4.1).
//!
//! The driver is also where the phase telemetry is recorded: every phase of
//! Alg. 1 runs inside a span, and the algorithm counters (distances,
//! cache hits, `ΔL` sizes, reassignments, replacements) are attributed to
//! the innermost open span. Counters are computed from closed-form sizes at
//! the orchestration level — never inside the parallel hot loops — so
//! instrumentation cannot perturb the seeded search path.

use proclus_telemetry::{counters, span, Recorder};

use crate::cancel::CancelToken;
use crate::dataset::DataMatrix;
use crate::error::Result;
use crate::par::Executor;
use crate::params::Params;
use crate::phases::assign::{assign_points, cluster_sizes};
use crate::phases::bad_medoids::{compute_bad_medoids, replace_bad_medoids};
use crate::phases::evaluate::evaluate_clusters;
use crate::phases::find_dimensions::find_dimensions;
use crate::phases::initialization::{greedy_select, sample_data_prime};
use crate::phases::refinement::{remove_outliers, x_from_clusters};
use crate::result::Clustering;
use crate::rng::ProclusRng;

/// Strategy object producing `X` and `|L|` for the current medoids.
///
/// `m_data` holds the data indices of all potential medoids `M`; `mcur`
/// holds the current medoids as indices into `m_data` (the paper's `MIdx`).
pub(crate) trait XEngine {
    fn x_matrix(
        &mut self,
        data: &DataMatrix,
        m_data: &[usize],
        mcur: &[usize],
        exec: &Executor,
        rec: &dyn Recorder,
    ) -> (Vec<f64>, Vec<usize>);
}

/// Runs the initialization phase: sample `Data'` and greedily select `M`.
/// Returns the data indices of the potential medoids.
pub(crate) fn initialization_phase(
    data: &DataMatrix,
    params: &Params,
    rng: &mut ProclusRng,
    exec: &Executor,
    rec: &dyn Recorder,
) -> Vec<usize> {
    let _init = span(rec, "initialization");
    let sample = sample_data_prime(rng, data.n(), params.sample_size(data.n()));
    let m_count = params.num_potential_medoids(data.n());
    // Greedy farthest-point selection evaluates |S| distances per pick
    // after the first (one fold pass over all candidates).
    rec.add(
        counters::DISTANCES_COMPUTED,
        (m_count.saturating_sub(1) * sample.len()) as u64,
    );
    greedy_select(data, &sample, m_count, rng, exec)
}

/// Runs the iterative + refinement phases given an already-selected `M`.
///
/// `init_mcur` (indices into `m_data`) overrides the random initial medoid
/// set — used by multi-parameter level 3 to warm-start from the previous
/// setting's best medoids (§3.1). Returns the clustering together with the
/// best medoids as indices into `m_data`, which the warm start needs.
///
/// `cancel` is checked cooperatively at phase boundaries (top of every
/// iteration and before refinement); a tripped token aborts with
/// [`crate::ProclusError::Cancelled`] and no partial result.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_core<E: XEngine>(
    data: &DataMatrix,
    params: &Params,
    exec: &Executor,
    rng: &mut ProclusRng,
    engine: &mut E,
    m_data: &[usize],
    init_mcur: Option<Vec<usize>>,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> Result<(Clustering, Vec<usize>)> {
    let k = params.k;
    let (n, d) = (data.n(), data.d());
    let m_len = m_data.len();

    let mut mcur = match init_mcur {
        Some(m) => {
            debug_assert_eq!(m.len(), k);
            m
        }
        None => rng.sample_distinct(m_len, k),
    };

    let mut best_cost = f64::INFINITY;
    let mut best_mcur = mcur.clone();
    let mut best_labels: Vec<i32> = Vec::new();
    let mut itr = 0usize;
    let mut total = 0usize;
    let mut converged = false;
    // Previous iteration's assignment, for the points_reassigned counter
    // (only maintained when a real recorder is attached).
    let mut prev_labels: Vec<i32> = Vec::new();

    // Iterative phase (Alg. 1 lines 5–14).
    loop {
        cancel.check()?;
        let _iter = span(rec, "iteration");
        let medoids: Vec<usize> = mcur.iter().map(|&mi| m_data[mi]).collect();
        let (x, _lsz) = {
            let _ph = span(rec, "compute_l");
            engine.x_matrix(data, m_data, &mcur, exec, rec)
        };
        let dims = {
            let _ph = span(rec, "find_dimensions");
            find_dimensions(&x, k, d, params.l)
        };
        let labels = {
            let _ph = span(rec, "assign_points");
            rec.add(counters::SEGMENTAL_DISTANCES, (n * k) as u64);
            assign_points(data, &medoids, &dims, exec)
        };
        if rec.enabled() {
            let changed = if prev_labels.is_empty() {
                n
            } else {
                labels
                    .iter()
                    .zip(&prev_labels)
                    .filter(|(a, b)| a != b)
                    .count()
            };
            rec.add(counters::POINTS_REASSIGNED, changed as u64);
            prev_labels = labels.clone();
        }
        let cost = {
            let _ph = span(rec, "evaluate_clusters");
            evaluate_clusters(data, &labels, &dims, exec)
        };
        total += 1;
        rec.add(counters::ITERATIONS, 1);

        if cost < best_cost {
            best_cost = cost;
            best_mcur = mcur.clone();
            best_labels = labels;
            itr = 0;
        } else {
            itr += 1;
        }

        if itr >= params.itr_pat {
            converged = true;
            break;
        }
        if total >= params.max_total_iterations {
            break;
        }

        let _ph = span(rec, "bad_medoids");
        let best_sizes = cluster_sizes(&best_labels, k);
        let bad = compute_bad_medoids(&best_sizes, n, params.min_dev, params.bad_medoid_rule);
        rec.add(counters::MEDOIDS_REPLACED, bad.len() as u64);
        mcur = replace_bad_medoids(&best_mcur, &bad, m_len, rng);
    }

    // Refinement phase (Alg. 1 lines 15–19): L ← CBest.
    cancel.check()?;
    let _refine = span(rec, "refinement");
    let medoids: Vec<usize> = best_mcur.iter().map(|&mi| m_data[mi]).collect();
    let (x, _) = {
        let _ph = span(rec, "compute_l");
        x_from_clusters(data, &medoids, &best_labels, exec)
    };
    let dims = {
        let _ph = span(rec, "find_dimensions");
        find_dimensions(&x, k, d, params.l)
    };
    let labels = {
        let _ph = span(rec, "assign_points");
        rec.add(counters::SEGMENTAL_DISTANCES, (n * k) as u64);
        assign_points(data, &medoids, &dims, exec)
    };
    let refined_cost = {
        let _ph = span(rec, "evaluate_clusters");
        evaluate_clusters(data, &labels, &dims, exec)
    };
    let labels = {
        let _ph = span(rec, "remove_outliers");
        rec.add(counters::SEGMENTAL_DISTANCES, (n * k) as u64);
        remove_outliers(data, &labels, &medoids, &dims, exec)
    };

    Ok((
        Clustering {
            medoids,
            subspaces: dims,
            labels,
            cost: best_cost,
            refined_cost,
            iterations: total,
            converged,
        },
        best_mcur,
    ))
}

/// Convenience: full run (init + iterate + refine) with a given engine,
/// wrapped in one `run` span. Every public entry point — `run`, the grid
/// runners, and the deprecated free-function shims — funnels through here
/// (or through [`run_core`] directly), so the cancellation discipline is
/// uniform across one-shot and served paths.
pub(crate) fn run_full<E: XEngine>(
    data: &DataMatrix,
    params: &Params,
    exec: &Executor,
    engine: &mut E,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> Result<Clustering> {
    params.validate(data)?;
    cancel.check()?;
    let _run = span(rec, "run");
    let mut rng = ProclusRng::new(params.seed);
    let m_data = initialization_phase(data, params, &mut rng, exec, rec);
    run_core(
        data, params, exec, &mut rng, engine, &m_data, None, rec, cancel,
    )
    .map(|(c, _)| c)
}
