//! The unified CPU entry point: [`run`] dispatches a [`Config`] to the
//! right variant × executor × (single | grid) combination and optionally
//! records telemetry.

use std::time::Instant;

use proclus_telemetry::{NullRecorder, Recorder, Telemetry};

use crate::baseline::run_baseline;
use crate::cancel::CancelToken;
use crate::config::{Algo, Backend, Config, RunOutput};
use crate::dataset::DataMatrix;
use crate::error::{ProclusError, Result};
use crate::fast::run_fast;
use crate::fast_star::run_fast_star;
use crate::multi_param::{fast_proclus_multi_outcomes, proclus_multi_outcomes, ReuseLevel};
use crate::par::Executor;
use crate::result::Clustering;

/// Builds the executor a [`Config`] asks for (`0`/`1` threads →
/// sequential).
pub fn executor_for(config: &Config) -> Executor {
    if config.threads > 1 {
        Executor::Parallel {
            threads: config.threads,
        }
    } else {
        Executor::Sequential
    }
}

/// Stamps the run metadata every backend reports identically.
pub fn stamp_meta(tel: &Telemetry, data: &DataMatrix, config: &Config) {
    tel.set_meta("algo", config.algo.name());
    tel.set_meta("backend", config.backend.name());
    tel.set_meta("seed", config.params.seed);
    tel.set_meta("n", data.n());
    tel.set_meta("d", data.d());
    tel.set_meta("k", config.params.k);
    tel.set_meta("l", config.params.l);
    tel.set_meta("threads", config.threads);
    if let Some(grid) = &config.grid {
        tel.set_meta("grid_settings", grid.settings.len());
    }
}

/// Runs the configured algorithm on the CPU.
///
/// This is the single entry point replacing the per-variant functions
/// (`proclus`, `fast_proclus`, `fast_star_proclus` and their `_par`
/// siblings): variant, thread count, parameter grid, and telemetry are all
/// chosen by the [`Config`]. [`Backend::Gpu`] is rejected with
/// [`ProclusError::Unsupported`] — the `proclus-gpu` crate's `run`/`run_on`
/// accept the same `Config` and handle both backends.
///
/// ```
/// use proclus::{run, Algo, Config, DataMatrix, Params};
///
/// let rows: Vec<Vec<f32>> = (0..300)
///     .map(|i| {
///         let c = (i % 2) as f32 * 20.0;
///         vec![c + (i % 5) as f32 * 0.1, (i % 11) as f32, c + (i % 3) as f32 * 0.1]
///     })
///     .collect();
/// let data = DataMatrix::from_rows(&rows).unwrap();
/// let config = Config::new(Params::new(2, 2).with_a(30).with_b(5).with_seed(42))
///     .with_algo(Algo::Fast)
///     .with_telemetry(true);
/// let output = run(&data, &config).unwrap();
/// assert_eq!(output.clustering().k(), 2);
/// let report = output.telemetry.unwrap();
/// assert!(report.total(proclus::telemetry::counters::DISTANCES_COMPUTED) > 0);
/// ```
pub fn run(data: &DataMatrix, config: &Config) -> Result<RunOutput> {
    run_with_cancel(data, config, &CancelToken::new())
}

/// [`run`] with cooperative cancellation: the token is checked at phase
/// boundaries (iteration tops, before refinement). A cancelled single run
/// returns [`ProclusError::Cancelled`]; in a grid run the token applies to
/// every setting, and settings cancelled mid-grid land in
/// [`RunOutput::setting_errors`] like any other per-setting failure.
pub fn run_with_cancel(
    data: &DataMatrix,
    config: &Config,
    cancel: &CancelToken,
) -> Result<RunOutput> {
    if config.backend != Backend::Cpu {
        return Err(ProclusError::unsupported(
            "proclus::run executes on the CPU only; use proclus_gpu::run \
             (or run_on) for Backend::Gpu",
        ));
    }
    let t0 = Instant::now();
    let tel = config.telemetry.then(|| {
        let t = Telemetry::new();
        stamp_meta(&t, data, config);
        t
    });
    let null = NullRecorder;
    let rec: &dyn Recorder = tel.as_ref().map_or(&null as &dyn Recorder, |t| t);

    let pool_before = crate::par::pool_stats();
    let (clusterings, setting_errors) = run_cpu_with(data, config, rec, cancel)?;
    record_pool_stats(rec, pool_before);

    Ok(RunOutput {
        clusterings,
        setting_errors,
        telemetry: tel.map(Telemetry::finish),
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    })
}

/// Records the work-stealing pool's activity during a run as counter
/// deltas against a snapshot taken before it. Deltas are only emitted when
/// non-zero, so sequential / single-grain runs produce no pool counters
/// (and the pinned golden telemetry trees stay byte-stable). The pool is
/// process-wide: with concurrent runs, each run's delta is a superset of
/// its own activity.
fn record_pool_stats(rec: &dyn Recorder, before: crate::par::PoolStats) {
    if !rec.enabled() {
        return;
    }
    let after = crate::par::pool_stats();
    use proclus_telemetry::counters as c;
    for (name, delta) in [
        (c::POOL_TASKS, after.tasks_executed - before.tasks_executed),
        (c::POOL_STEALS, after.steals - before.steals),
        (
            c::POOL_STEAL_FAILURES,
            after.steal_failures - before.steal_failures,
        ),
        (c::POOL_PARKS, after.parks - before.parks),
        (c::POOL_UNPARKS, after.unparks - before.unparks),
    ] {
        if delta > 0 {
            rec.add(name, delta);
        }
    }
}

/// The successful clusterings of a (possibly grid) run plus its
/// per-setting errors.
#[doc(hidden)]
pub type PartitionedOutcomes = (Vec<Clustering>, Vec<(usize, ProclusError)>);

/// Splits per-setting outcomes into (successes in setting order, indexed
/// errors).
#[doc(hidden)]
pub fn partition_outcomes(outcomes: Vec<Result<Clustering>>) -> PartitionedOutcomes {
    let mut clusterings = Vec::with_capacity(outcomes.len());
    let mut errors = Vec::new();
    for (i, o) in outcomes.into_iter().enumerate() {
        match o {
            Ok(c) => clusterings.push(c),
            Err(e) => errors.push((i, e)),
        }
    }
    (clusterings, errors)
}

/// CPU dispatch against an externally owned recorder — shared with the
/// `proclus-gpu` crate, whose `run` delegates CPU configs here while
/// keeping its own telemetry collector (so GPU and CPU runs land in one
/// report format). Returns the successful clusterings plus the per-setting
/// errors of a grid run (always empty for single runs, whose failures are
/// the outer `Err`).
#[doc(hidden)]
pub fn run_cpu_with(
    data: &DataMatrix,
    config: &Config,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> Result<PartitionedOutcomes> {
    let exec = executor_for(config);
    match &config.grid {
        None => {
            let c = match config.algo {
                Algo::Baseline => run_baseline(data, &config.params, &exec, rec, cancel)?,
                Algo::Fast => run_fast(data, &config.params, &exec, rec, cancel)?,
                Algo::FastStar => run_fast_star(data, &config.params, &exec, rec, cancel)?,
            };
            Ok((vec![c], Vec::new()))
        }
        Some(grid) => {
            let cancels = vec![cancel.clone(); grid.settings.len()];
            let outcomes = match config.algo {
                Algo::Baseline => {
                    if grid.reuse != ReuseLevel::Independent {
                        return Err(ProclusError::unsupported(
                            "the baseline cannot share computation across settings; \
                             use ReuseLevel::Independent or Algo::Fast",
                        ));
                    }
                    proclus_multi_outcomes(
                        data,
                        &config.params,
                        &grid.settings,
                        &exec,
                        rec,
                        &cancels,
                    )
                }
                Algo::Fast => fast_proclus_multi_outcomes(
                    data,
                    &config.params,
                    &grid.settings,
                    grid.reuse,
                    &exec,
                    rec,
                    &cancels,
                ),
                Algo::FastStar => {
                    return Err(ProclusError::unsupported(
                        "multi-parameter grids are defined for Algo::Fast (the \
                         Dist/H cache is what settings share, §3.1) and \
                         Algo::Baseline (independent runs); FAST* keeps no \
                         cross-setting state",
                    ))
                }
            };
            Ok(partition_outcomes(outcomes))
        }
    }
}

/// Runs one (non-grid) configuration on an explicit [`Executor`] — the hook
/// the cross-executor equivalence suite and `par_bench` use to pin
/// [`Executor::StaticSplit`] and [`Executor::Parallel`] bit-for-bit against
/// [`Executor::Sequential`]. Normal callers go through [`run`], which picks
/// the executor from `Config::threads`.
#[doc(hidden)]
pub fn run_single_on(data: &DataMatrix, config: &Config, exec: &Executor) -> Result<Clustering> {
    let rec = NullRecorder;
    let cancel = CancelToken::new();
    match config.algo {
        Algo::Baseline => run_baseline(data, &config.params, exec, &rec, &cancel),
        Algo::Fast => run_fast(data, &config.params, exec, &rec, &cancel),
        Algo::FastStar => run_fast_star(data, &config.params, exec, &rec, &cancel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Grid;
    use crate::multi_param::Setting;
    use crate::params::Params;
    use proclus_telemetry::counters;

    fn blob_data(n: usize) -> DataMatrix {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0f32 } else { 50.0 };
                let noise = |s: usize| ((i * s) % 17) as f32 * 0.05;
                vec![
                    c + noise(3),
                    c + noise(5),
                    ((i * 7) % 100) as f32,
                    ((i * 11) % 100) as f32,
                ]
            })
            .collect();
        DataMatrix::from_rows(&rows).unwrap()
    }

    fn small_params() -> Params {
        Params::new(2, 2).with_a(30).with_b(5).with_seed(7)
    }

    #[test]
    fn run_matches_the_direct_variant_runners() {
        let data = blob_data(400);
        let p = small_params();
        type VariantRunner = dyn Fn(
            &DataMatrix,
            &Params,
            &Executor,
            &dyn proclus_telemetry::Recorder,
            &CancelToken,
        ) -> Result<Clustering>;
        let direct = |f: &VariantRunner| {
            f(
                &data,
                &p,
                &Executor::Sequential,
                &NullRecorder,
                &CancelToken::new(),
            )
            .unwrap()
        };
        let via_run = run(&data, &Config::new(p.clone()).with_algo(Algo::Baseline)).unwrap();
        assert_eq!(
            via_run.clustering(),
            &direct(&crate::baseline::run_baseline)
        );

        let fast_run = run(&data, &Config::new(p.clone())).unwrap();
        assert_eq!(fast_run.clustering(), &direct(&crate::fast::run_fast));

        let star_run = run(&data, &Config::new(p.clone()).with_algo(Algo::FastStar)).unwrap();
        assert_eq!(
            star_run.clustering(),
            &direct(&crate::fast_star::run_fast_star)
        );
    }

    #[test]
    fn telemetry_is_off_by_default_and_on_when_asked() {
        let data = blob_data(300);
        let off = run(&data, &Config::new(small_params())).unwrap();
        assert!(off.telemetry.is_none());
        let on = run(&data, &Config::new(small_params()).with_telemetry(true)).unwrap();
        let report = on.telemetry.unwrap();
        assert_eq!(report.meta.get("algo").map(String::as_str), Some("fast"));
        assert_eq!(report.total(counters::ITERATIONS) as usize, {
            on.clusterings[0].iterations
        });
        for phase in [
            "run",
            "initialization",
            "iteration",
            "compute_l",
            "find_dimensions",
            "assign_points",
            "evaluate_clusters",
            "refinement",
            "remove_outliers",
        ] {
            assert!(report.find_span(phase).is_some(), "missing span {phase}");
        }
        assert!(report.total(counters::DIST_CACHE_HITS) > 0);
        assert!(report.total(counters::POINTS_REASSIGNED) >= data.n() as u64);
    }

    #[test]
    fn telemetry_does_not_change_the_result() {
        let data = blob_data(300);
        let quiet = run(&data, &Config::new(small_params())).unwrap();
        let loud = run(&data, &Config::new(small_params()).with_telemetry(true)).unwrap();
        assert_eq!(quiet.clusterings, loud.clusterings);
    }

    #[test]
    fn fast_computes_strictly_fewer_distances_than_baseline() {
        // Theorem 3.1 made observable: same seed, same search path, fewer
        // full-dimensional distance evaluations.
        let data = blob_data(400);
        let base = run(
            &data,
            &Config::new(small_params())
                .with_algo(Algo::Baseline)
                .with_telemetry(true),
        )
        .unwrap();
        let fast = run(&data, &Config::new(small_params()).with_telemetry(true)).unwrap();
        assert_eq!(base.clusterings, fast.clusterings);
        let db = base.telemetry.unwrap().total(counters::DISTANCES_COMPUTED);
        let df = fast.telemetry.unwrap().total(counters::DISTANCES_COMPUTED);
        assert!(df < db, "fast {df} must be < baseline {db}");
    }

    #[test]
    fn grid_runs_every_setting() {
        let data = blob_data(500);
        let grid = Grid::new(
            vec![Setting::new(3, 2), Setting::new(4, 3)],
            ReuseLevel::SharedCache,
        );
        let out = run(
            &data,
            &Config::new(Params::new(4, 2).with_a(20).with_b(4).with_seed(5))
                .with_grid(grid)
                .with_telemetry(true),
        )
        .unwrap();
        assert_eq!(out.clusterings.len(), 2);
        assert_eq!(out.clusterings[1].k(), 4);
        // One root run span per setting.
        let report = out.telemetry.unwrap();
        assert_eq!(report.spans.iter().filter(|s| s.name == "run").count(), 2);
    }

    #[test]
    fn grid_skips_and_reports_invalid_settings() {
        let data = blob_data(500);
        // Middle setting asks for l > d and must be skipped, not abort.
        let grid = Grid::new(
            vec![Setting::new(3, 2), Setting::new(3, 9), Setting::new(4, 3)],
            ReuseLevel::SharedCache,
        );
        let out = run(
            &data,
            &Config::new(Params::new(4, 2).with_a(20).with_b(4).with_seed(5)).with_grid(grid),
        )
        .unwrap();
        assert_eq!(out.clusterings.len(), 2);
        assert_eq!(out.setting_errors.len(), 1);
        assert_eq!(out.setting_errors[0].0, 1);
        assert!(matches!(
            out.setting_errors[0].1,
            ProclusError::DimensionalityExceeded { l: 9, d: 4 }
        ));
    }

    #[test]
    fn pre_cancelled_token_stops_single_and_grid_runs() {
        use crate::cancel::CancelToken;
        let data = blob_data(300);
        let token = CancelToken::new();
        token.cancel();
        // Single run: outer error.
        assert!(matches!(
            run_with_cancel(&data, &Config::new(small_params()), &token),
            Err(ProclusError::Cancelled { .. })
        ));
        // Grid run: per-setting errors, no clusterings, queue not poisoned.
        let grid = Grid::new(
            vec![Setting::new(2, 2), Setting::new(3, 2)],
            ReuseLevel::SharedCache,
        );
        let out =
            run_with_cancel(&data, &Config::new(small_params()).with_grid(grid), &token).unwrap();
        assert!(out.clusterings.is_empty());
        assert_eq!(out.setting_errors.len(), 2);
        assert!(out
            .setting_errors
            .iter()
            .all(|(_, e)| matches!(e, ProclusError::Cancelled { .. })));
    }

    #[test]
    fn unsupported_combinations_are_reported_not_panicked() {
        let data = blob_data(300);
        let gpu = Config::new(small_params()).with_backend(Backend::Gpu);
        assert!(matches!(
            run(&data, &gpu),
            Err(ProclusError::Unsupported { .. })
        ));
        let star_grid = Config::new(small_params())
            .with_algo(Algo::FastStar)
            .with_grid(Grid::new(vec![Setting::new(2, 2)], ReuseLevel::Independent));
        assert!(matches!(
            run(&data, &star_grid),
            Err(ProclusError::Unsupported { .. })
        ));
    }

    #[test]
    fn threads_follow_the_same_search_path() {
        let data = blob_data(400);
        let seq = run(&data, &Config::new(small_params())).unwrap();
        let par = run(&data, &Config::new(small_params()).with_threads(4)).unwrap();
        assert_eq!(seq.clustering().medoids, par.clustering().medoids);
        assert_eq!(seq.clustering().labels, par.clustering().labels);
    }
}
