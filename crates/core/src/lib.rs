//! # proclus — the PROCLUS projected-clustering family on the CPU
//!
//! A faithful Rust implementation of PROCLUS (Aggarwal et al., SIGMOD '99)
//! and of the algorithmic accelerations from *GPU-FAST-PROCLUS* (Jørgensen
//! et al., EDBT '22).
//!
//! Every variant is reached through one entry point, [`run`], configured by
//! a [`Config`]:
//!
//! * [`Algo::Baseline`] — sample → greedy medoid candidates → iterative
//!   medoid search (ComputeL, FindDimensions, AssignPoints,
//!   EvaluateClusters, bad-medoid replacement) → refinement with outlier
//!   removal.
//! * [`Algo::Fast`] — FAST-PROCLUS (§3): distances to potential medoids
//!   computed once and cached (`Dist`/`DistFound`), and the per-dimension
//!   distance sums `H` maintained incrementally from the sphere delta
//!   `ΔL_i` (Theorems 3.1/3.2).
//! * [`Algo::FastStar`] — FAST*-PROCLUS (§3.2): the space-reduced variant
//!   keeping only the current `k` medoids' caches.
//! * [`Config::with_threads`] — the paper's multi-core CPU parallelizations
//!   (per-thread partials + reduction, the OpenMP structure) built on
//!   [`par::Executor`].
//! * [`Config::with_grid`] — a grid of `(k, l)` settings with the three
//!   cumulative reuse levels of §3.1 (see [`multi_param`]).
//! * [`Config::with_telemetry`] — phase spans and algorithm counters
//!   (distances computed, cache hits, `ΔL` sizes, …) recorded into
//!   [`RunOutput::telemetry`]; see the [`telemetry`] crate re-export.
//!
//! All variants are driven by the same seeded search path: for equal
//! [`Params::seed`] they visit the same medoid sets and return the same
//! clustering (up to floating-point reduction order), which the integration
//! tests assert. The GPU counterparts live in the `proclus-gpu` crate,
//! whose `run`/`run_on` accept this same [`Config`] with
//! [`Backend::Gpu`].
//!
//! ## Quick start
//!
//! ```
//! use proclus::{run, Config, DataMatrix, Params};
//!
//! // Two clusters along dim 0 of 3-D data.
//! let rows: Vec<Vec<f32>> = (0..300)
//!     .map(|i| {
//!         let c = (i % 2) as f32 * 20.0;
//!         vec![c + (i % 5) as f32 * 0.1, (i % 11) as f32, c + (i % 3) as f32 * 0.1]
//!     })
//!     .collect();
//! let data = DataMatrix::from_rows(&rows).unwrap();
//! let params = Params::new(2, 2).with_a(30).with_b(5).with_seed(42);
//! let output = run(&data, &Config::new(params)).unwrap();
//! let clustering = output.clustering();
//! assert_eq!(clustering.k(), 2);
//! assert_eq!(clustering.labels.len(), 300);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod baseline;
pub mod cancel;
pub mod config;
pub mod dataset;
pub mod distance;
pub mod distance_simd;
mod driver;
pub mod error;
pub mod fast;
pub mod fast_star;
pub mod metrics;
pub mod metrics_subspace;
pub mod multi_param;
pub mod par;
pub mod params;
pub mod phases;
pub mod result;
pub mod rng;
mod run;

/// Re-export of the `proclus-telemetry` crate: recorder trait, collecting
/// [`telemetry::Telemetry`], counter names, and the report exporters.
pub use proclus_telemetry as telemetry;

pub use cancel::CancelToken;
pub use config::{Algo, Backend, Config, Grid, RunOutput};
pub use dataset::DataMatrix;
pub use error::{ProclusError, Result};
pub use multi_param::{
    default_grid, fast_proclus_multi, fast_proclus_multi_outcomes, proclus_multi,
    proclus_multi_outcomes, ReuseLevel, Setting,
};
pub use params::{BadMedoidRule, Params, ParamsBuilder};
pub use result::{Clustering, OUTLIER};
pub use rng::ProclusRng;
#[doc(hidden)]
pub use run::{
    executor_for, partition_outcomes, run_cpu_with, run_single_on, stamp_meta, PartitionedOutcomes,
};
pub use run::{run, run_with_cancel};
