//! # proclus — the PROCLUS projected-clustering family on the CPU
//!
//! A faithful Rust implementation of PROCLUS (Aggarwal et al., SIGMOD '99)
//! and of the algorithmic accelerations from *GPU-FAST-PROCLUS* (Jørgensen
//! et al., EDBT '22):
//!
//! * [`proclus`] — the baseline: sample → greedy medoid candidates →
//!   iterative medoid search (ComputeL, FindDimensions, AssignPoints,
//!   EvaluateClusters, bad-medoid replacement) → refinement with outlier
//!   removal.
//! * [`fast_proclus`] — FAST-PROCLUS (§3): distances to potential medoids
//!   computed once and cached (`Dist`/`DistFound`), and the per-dimension
//!   distance sums `H` maintained incrementally from the sphere delta
//!   `ΔL_i` (Theorems 3.1/3.2).
//! * [`fast_star_proclus`] — FAST*-PROCLUS (§3.2): the space-reduced
//!   variant keeping only the current `k` medoids' caches.
//! * `*_par` variants — the paper's multi-core CPU parallelizations
//!   (per-thread partials + reduction, the OpenMP structure) built on
//!   [`par::Executor`].
//! * [`multi_param`] — running a grid of `(k, l)` settings with the three
//!   cumulative reuse levels of §3.1.
//!
//! All variants are driven by the same seeded search path: for equal
//! [`Params::seed`] they visit the same medoid sets and return the same
//! clustering (up to floating-point reduction order), which the integration
//! tests assert. The GPU counterparts live in the `proclus-gpu` crate.
//!
//! ## Quick start
//!
//! ```
//! use proclus::{fast_proclus, DataMatrix, Params};
//!
//! // Two clusters along dim 0 of 3-D data.
//! let rows: Vec<Vec<f32>> = (0..300)
//!     .map(|i| {
//!         let c = (i % 2) as f32 * 20.0;
//!         vec![c + (i % 5) as f32 * 0.1, (i % 11) as f32, c + (i % 3) as f32 * 0.1]
//!     })
//!     .collect();
//! let data = DataMatrix::from_rows(&rows).unwrap();
//! let params = Params::new(2, 2).with_a(30).with_b(5).with_seed(42);
//! let clustering = fast_proclus(&data, &params).unwrap();
//! assert_eq!(clustering.k(), 2);
//! assert_eq!(clustering.labels.len(), 300);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod dataset;
pub mod distance;
mod driver;
pub mod error;
pub mod fast;
pub mod fast_star;
pub mod metrics;
pub mod metrics_subspace;
pub mod multi_param;
pub mod par;
pub mod params;
pub mod phases;
pub mod result;
pub mod rng;

pub use baseline::{proclus, proclus_par};
pub use dataset::DataMatrix;
pub use error::{ProclusError, Result};
pub use fast::{fast_proclus, fast_proclus_par};
pub use fast_star::{fast_star_proclus, fast_star_proclus_par};
pub use multi_param::{default_grid, fast_proclus_multi, proclus_multi, ReuseLevel, Setting};
pub use params::{BadMedoidRule, Params};
pub use result::{Clustering, OUTLIER};
pub use rng::ProclusRng;
