//! External cluster-quality metrics, used by the test suite to verify that
//! all algorithm variants recover planted subspace clusters (the paper
//! argues correctness by construction — "GPU-PROCLUS and all the algorithmic
//! strategies produce the same clustering as PROCLUS", §5.1 — so quality is
//! only needed as a sanity check, not as an evaluation metric).
//!
//! Labels may contain `-1` (outliers/noise); such points are treated as one
//! extra cluster of their own so no information is silently dropped.

use std::collections::HashMap;

/// A contingency table between two labelings over the same points.
#[derive(Debug, Clone)]
pub struct Contingency {
    counts: HashMap<(i32, i32), usize>,
    row_sums: HashMap<i32, usize>,
    col_sums: HashMap<i32, usize>,
    n: usize,
}

impl Contingency {
    /// Builds the table. Panics if the label slices differ in length.
    pub fn new(truth: &[i32], pred: &[i32]) -> Self {
        assert_eq!(truth.len(), pred.len(), "label arrays must align");
        let mut counts = HashMap::new();
        let mut row_sums = HashMap::new();
        let mut col_sums = HashMap::new();
        for (&t, &p) in truth.iter().zip(pred) {
            *counts.entry((t, p)).or_insert(0) += 1;
            *row_sums.entry(t).or_insert(0) += 1;
            *col_sums.entry(p).or_insert(0) += 1;
        }
        Self {
            counts,
            row_sums,
            col_sums,
            n: truth.len(),
        }
    }

    /// Number of points.
    pub fn n(&self) -> usize {
        self.n
    }
}

fn choose2(x: usize) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Adjusted Rand Index in `[-1, 1]`; `1` means identical partitions,
/// `≈ 0` means chance-level agreement.
pub fn adjusted_rand_index(truth: &[i32], pred: &[i32]) -> f64 {
    let c = Contingency::new(truth, pred);
    if c.n < 2 {
        return 1.0;
    }
    let sum_cells: f64 = c.counts.values().map(|&v| choose2(v)).sum();
    let sum_rows: f64 = c.row_sums.values().map(|&v| choose2(v)).sum();
    let sum_cols: f64 = c.col_sums.values().map(|&v| choose2(v)).sum();
    let total = choose2(c.n);
    let expected = sum_rows * sum_cols / total;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < 1e-15 {
        return 1.0;
    }
    (sum_cells - expected) / (max_index - expected)
}

/// Normalized Mutual Information in `[0, 1]` (square-root normalization).
pub fn normalized_mutual_information(truth: &[i32], pred: &[i32]) -> f64 {
    let c = Contingency::new(truth, pred);
    let n = c.n as f64;
    if c.row_sums.len() <= 1 && c.col_sums.len() <= 1 {
        return 1.0;
    }
    let mut mi = 0.0f64;
    for (&(t, p), &v) in &c.counts {
        let pij = v as f64 / n;
        let pi = c.row_sums[&t] as f64 / n;
        let pj = c.col_sums[&p] as f64 / n;
        if pij > 0.0 {
            mi += pij * (pij / (pi * pj)).ln();
        }
    }
    let h = |sums: &HashMap<i32, usize>| -> f64 {
        sums.values()
            .map(|&v| {
                let p = v as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ht = h(&c.row_sums);
    let hp = h(&c.col_sums);
    if ht <= 0.0 || hp <= 0.0 {
        return 0.0;
    }
    (mi / (ht * hp).sqrt()).clamp(0.0, 1.0)
}

/// Purity in `(0, 1]`: the fraction of points in the majority-truth class
/// of their predicted cluster.
pub fn purity(truth: &[i32], pred: &[i32]) -> f64 {
    let c = Contingency::new(truth, pred);
    let mut best: HashMap<i32, usize> = HashMap::new();
    for (&(_, p), &v) in &c.counts {
        let e = best.entry(p).or_insert(0);
        *e = (*e).max(v);
    }
    best.values().sum::<usize>() as f64 / c.n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(purity(&a, &a), 1.0);
    }

    #[test]
    fn permuted_labels_still_score_one() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&truth, &pred) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&truth, &pred) - 1.0).abs() < 1e-12);
        assert_eq!(purity(&truth, &pred), 1.0);
    }

    #[test]
    fn random_disagreement_scores_near_zero_ari() {
        // Orthogonal partitions of a 4-element grid repeated.
        let truth: Vec<i32> = (0..400).map(|i| i % 2).collect();
        let pred: Vec<i32> = (0..400).map(|i| (i / 2) % 2).collect();
        let ari = adjusted_rand_index(&truth, &pred);
        assert!(ari.abs() < 0.05, "ari = {ari}");
    }

    #[test]
    fn one_big_cluster_has_low_ari_but_full_purity_inverse() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 0, 0];
        assert!(adjusted_rand_index(&truth, &pred) <= 0.0 + 1e-12);
        assert_eq!(purity(&truth, &pred), 0.5);
    }

    #[test]
    fn outlier_label_is_its_own_cluster() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 1, -1];
        let ari = adjusted_rand_index(&truth, &pred);
        assert!(ari < 1.0 && ari > 0.0);
    }

    #[test]
    fn metric_symmetry_ari() {
        let a = vec![0, 1, 0, 2, 2, 1, 0];
        let b = vec![1, 1, 0, 0, 2, 2, 0];
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
        assert!(
            (normalized_mutual_information(&a, &b) - normalized_mutual_information(&b, &a)).abs()
                < 1e-12
        );
    }
}
