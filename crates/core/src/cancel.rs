//! Cooperative cancellation for long-running clustering work.
//!
//! A [`CancelToken`] is a cheap, cloneable flag (plus an optional deadline)
//! that the phase driver checks at phase boundaries — the top of every
//! medoid-search iteration and before refinement. Cancellation is therefore
//! *cooperative*: a cancelled run finishes its current phase and returns
//! [`ProclusError::Cancelled`] instead of a clustering, leaving no partial
//! state behind. The serving layer hands one token per job to the driver so
//! a client disconnect or an expired deadline stops paid work promptly
//! without poisoning the worker thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::error::{ProclusError, Result};

/// Shared cancellation flag with an optional absolute deadline.
///
/// Clones share the same flag: cancelling any clone cancels them all.
///
/// ```
/// use proclus::CancelToken;
/// let token = CancelToken::new();
/// let remote = token.clone();
/// assert!(token.check().is_ok());
/// remote.cancel();
/// assert!(token.is_cancelled());
/// assert!(token.check().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that is never cancelled unless [`CancelToken::cancel`] is
    /// called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally trips once `deadline` has passed.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] was called on any clone or the
    /// deadline (if any) has passed.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// True when this token carries a deadline that has passed (regardless
    /// of the explicit flag).
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// `Ok(())` while live, [`ProclusError::Cancelled`] once cancelled —
    /// the form the phase driver calls at phase boundaries.
    pub fn check(&self) -> Result<()> {
        if self.deadline_exceeded() {
            Err(ProclusError::cancelled("deadline exceeded"))
        } else if self.flag.load(Ordering::Acquire) {
            Err(ProclusError::cancelled("cancelled by caller"))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.check().unwrap();
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        assert!(matches!(t.check(), Err(ProclusError::Cancelled { .. })));
    }

    #[test]
    fn deadline_trips_without_an_explicit_cancel() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let err = t.check().unwrap_err();
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn future_deadline_stays_live() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.check().unwrap();
    }
}
