//! Subspace-aware external quality metrics: RNIA and CE.
//!
//! The paper situates PROCLUS in the evaluation framework of Müller et al.
//! ("Evaluating clustering in subspace projections of high dimensional
//! data", VLDB 2009 — the paper's \[26\]), whose headline metrics compare
//! clusterings as sets of *micro-objects*: a cluster `(C_i, D_i)` covers
//! the cell `(p, j)` for every member point `p` and subspace dimension
//! `j ∈ D_i`. Full-space metrics like ARI cannot distinguish a clustering
//! that found the right points in the wrong dimensions; these can.
//!
//! * **RNIA** (Relative Non-Intersecting Area), reported here as the score
//!   `1 − (U − I) / U`: the fraction of the union of covered cells that
//!   both clusterings cover. `1` = identical coverage.
//! * **CE** (Clustering Error), reported as `1 − D_max / U`: like RNIA but
//!   cells only count when they fall in clusters *matched one-to-one*
//!   between the two clusterings (maximum-weight bipartite matching), so
//!   splitting or merging clusters is penalized even when coverage agrees.
//!
//! Both are symmetric in their arguments. The assignment problem inside CE
//! is solved exactly with the Hungarian algorithm ([`hungarian`]), a small
//! substrate of its own.

use std::collections::HashMap;

/// A subspace cluster for metric purposes: member point indices and the
/// dimensions of its projection. Members and dims need not be sorted;
/// duplicates are ignored.
#[derive(Debug, Clone, Default)]
pub struct SubspaceCluster {
    /// Point indices belonging to the cluster.
    pub points: Vec<usize>,
    /// Dimensions of the cluster's subspace.
    pub dims: Vec<usize>,
}

impl SubspaceCluster {
    /// Creates a cluster from members and subspace dims.
    pub fn new(points: Vec<usize>, dims: Vec<usize>) -> Self {
        Self { points, dims }
    }

    /// Number of covered micro-cells `|points| × |dims|` (after dedup).
    fn cells(&self) -> Vec<(usize, usize)> {
        let mut pts = self.points.clone();
        pts.sort_unstable();
        pts.dedup();
        let mut dims = self.dims.clone();
        dims.sort_unstable();
        dims.dedup();
        let mut cells = Vec::with_capacity(pts.len() * dims.len());
        for &p in &pts {
            for &j in &dims {
                cells.push((p, j));
            }
        }
        cells
    }
}

/// Builds [`SubspaceCluster`]s from a label array plus per-cluster dims
/// (the shape [`crate::Clustering`] provides). Outliers (negative labels)
/// cover no cells, as in the framework.
pub fn clusters_from_labels(labels: &[i32], subspaces: &[Vec<usize>]) -> Vec<SubspaceCluster> {
    let mut out: Vec<SubspaceCluster> = subspaces
        .iter()
        .map(|d| SubspaceCluster::new(Vec::new(), d.clone()))
        .collect();
    for (p, &c) in labels.iter().enumerate() {
        if c >= 0 {
            out[c as usize].points.push(p);
        }
    }
    out
}

fn coverage_count(clusters: &[SubspaceCluster]) -> HashMap<(usize, usize), u32> {
    let mut cov: HashMap<(usize, usize), u32> = HashMap::new();
    for c in clusters {
        for cell in c.cells() {
            *cov.entry(cell).or_insert(0) += 1;
        }
    }
    cov
}

/// RNIA score in `[0, 1]`: `I / U` over micro-cells, counting multiplicity
/// (a cell covered twice on one side needs to be covered twice on the
/// other to intersect fully). Returns `1.0` when both clusterings cover
/// nothing.
pub fn rnia(truth: &[SubspaceCluster], found: &[SubspaceCluster]) -> f64 {
    let a = coverage_count(truth);
    let b = coverage_count(found);
    let mut intersection = 0u64;
    let mut union = 0u64;
    for (cell, &ca) in &a {
        let cb = b.get(cell).copied().unwrap_or(0);
        intersection += ca.min(cb) as u64;
        union += ca.max(cb) as u64;
    }
    for (cell, &cb) in &b {
        if !a.contains_key(cell) {
            union += cb as u64;
        }
    }
    if union == 0 {
        return 1.0;
    }
    intersection as f64 / union as f64
}

/// CE score in `[0, 1]`: micro-cell agreement restricted to an optimal
/// one-to-one matching of clusters. Returns `1.0` when both clusterings
/// cover nothing.
pub fn ce(truth: &[SubspaceCluster], found: &[SubspaceCluster]) -> f64 {
    // Union size (with multiplicity, as in RNIA).
    let a = coverage_count(truth);
    let b = coverage_count(found);
    let mut union = 0u64;
    for (cell, &ca) in &a {
        union += ca.max(b.get(cell).copied().unwrap_or(0)) as u64;
    }
    for (cell, &cb) in &b {
        if !a.contains_key(cell) {
            union += cb as u64;
        }
    }
    if union == 0 {
        return 1.0;
    }

    // Pairwise shared-cell counts as the assignment weight matrix.
    let n = truth.len().max(found.len());
    let mut weights = vec![vec![0i64; n]; n];
    let found_sets: Vec<HashMap<(usize, usize), u32>> = found
        .iter()
        .map(|c| {
            let mut m = HashMap::new();
            for cell in c.cells() {
                *m.entry(cell).or_insert(0) += 1;
            }
            m
        })
        .collect();
    for (i, t) in truth.iter().enumerate() {
        for cell in t.cells() {
            for (j, f) in found_sets.iter().enumerate() {
                if f.contains_key(&cell) {
                    weights[i][j] += 1;
                }
            }
        }
    }
    let matching = hungarian::max_weight_assignment(&weights);
    let matched: i64 = matching
        .iter()
        .enumerate()
        .map(|(i, &j)| weights[i][j])
        .sum();
    matched as f64 / union as f64
}

/// The Hungarian (Kuhn–Munkres) algorithm for square maximum-weight
/// assignment — the exact matcher CE requires. `O(n³)`.
pub mod hungarian {
    /// Returns, for each row `i`, the column assigned to it, maximizing the
    /// total weight over all perfect matchings of the square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square (all rows as long as `w`).
    pub fn max_weight_assignment(w: &[Vec<i64>]) -> Vec<usize> {
        let n = w.len();
        if n == 0 {
            return Vec::new();
        }
        for row in w {
            assert_eq!(row.len(), n, "weight matrix must be square");
        }
        // Classic O(n^3) shortest-augmenting-path formulation on the
        // *cost* matrix (negated weights), with potentials. 1-indexed
        // internal arrays per the standard presentation.
        let inf = i64::MAX / 4;
        let cost = |i: usize, j: usize| -w[i][j];
        let mut u = vec![0i64; n + 1];
        let mut v = vec![0i64; n + 1];
        let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
        let mut way = vec![0usize; n + 1];
        for i in 1..=n {
            p[0] = i;
            let mut j0 = 0usize;
            let mut minv = vec![inf; n + 1];
            let mut used = vec![false; n + 1];
            loop {
                used[j0] = true;
                let i0 = p[j0];
                let mut delta = inf;
                let mut j1 = 0usize;
                for j in 1..=n {
                    if !used[j] {
                        let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                        if cur < minv[j] {
                            minv[j] = cur;
                            way[j] = j0;
                        }
                        if minv[j] < delta {
                            delta = minv[j];
                            j1 = j;
                        }
                    }
                }
                for j in 0..=n {
                    if used[j] {
                        u[p[j]] += delta;
                        v[j] -= delta;
                    } else {
                        minv[j] -= delta;
                    }
                }
                j0 = j1;
                if p[j0] == 0 {
                    break;
                }
            }
            loop {
                let j1 = way[j0];
                p[j0] = p[j1];
                j0 = j1;
                if j0 == 0 {
                    break;
                }
            }
        }
        let mut assignment = vec![0usize; n];
        for j in 1..=n {
            if p[j] > 0 {
                assignment[p[j] - 1] = j - 1;
            }
        }
        assignment
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn total(w: &[Vec<i64>], a: &[usize]) -> i64 {
            a.iter().enumerate().map(|(i, &j)| w[i][j]).sum()
        }

        #[test]
        fn picks_the_obvious_diagonal() {
            let w = vec![vec![10, 1, 1], vec![1, 10, 1], vec![1, 1, 10]];
            assert_eq!(max_weight_assignment(&w), vec![0, 1, 2]);
        }

        #[test]
        fn handles_permuted_optimum() {
            let w = vec![vec![1, 9, 1], vec![9, 1, 1], vec![1, 1, 9]];
            let a = max_weight_assignment(&w);
            assert_eq!(a, vec![1, 0, 2]);
            assert_eq!(total(&w, &a), 27);
        }

        #[test]
        fn beats_greedy_when_greedy_is_suboptimal() {
            // Greedy takes (0,0)=8 then is stuck with 1+1=10 total;
            // optimal is 7+7+2 = 16.
            let w = vec![vec![8, 7, 1], vec![7, 1, 1], vec![2, 1, 2]];
            let a = max_weight_assignment(&w);
            assert!(total(&w, &a) >= 16, "got {}", total(&w, &a));
        }

        #[test]
        fn empty_matrix() {
            assert!(max_weight_assignment(&[]).is_empty());
        }

        #[test]
        fn assignment_is_a_permutation_on_random_matrices() {
            // Deterministic pseudo-random matrices; verify permutation and
            // optimality vs. brute force for n = 4.
            for seed in 0..20u64 {
                let n = 4;
                let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let mut next = || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state % 50) as i64
                };
                let w: Vec<Vec<i64>> = (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
                let a = max_weight_assignment(&w);
                let mut seen = vec![false; n];
                for &j in &a {
                    assert!(!seen[j], "duplicate column in {a:?}");
                    seen[j] = true;
                }
                // Brute force all 24 permutations.
                let mut best = i64::MIN;
                let mut perm: Vec<usize> = (0..n).collect();
                loop {
                    let t: i64 = perm.iter().enumerate().map(|(i, &j)| w[i][j]).sum();
                    best = best.max(t);
                    if !next_permutation(&mut perm) {
                        break;
                    }
                }
                assert_eq!(total(&w, &a), best, "matrix {w:?}");
            }
        }

        fn next_permutation(p: &mut [usize]) -> bool {
            let n = p.len();
            if n < 2 {
                return false;
            }
            let mut i = n - 1;
            while i > 0 && p[i - 1] >= p[i] {
                i -= 1;
            }
            if i == 0 {
                return false;
            }
            let mut j = n - 1;
            while p[j] <= p[i - 1] {
                j -= 1;
            }
            p.swap(i - 1, j);
            p[i..].reverse();
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(points: &[usize], dims: &[usize]) -> SubspaceCluster {
        SubspaceCluster::new(points.to_vec(), dims.to_vec())
    }

    #[test]
    fn identical_clusterings_score_one() {
        let a = vec![c(&[0, 1, 2], &[0, 1]), c(&[3, 4], &[2])];
        assert_eq!(rnia(&a, &a), 1.0);
        assert_eq!(ce(&a, &a), 1.0);
    }

    #[test]
    fn wrong_dimensions_are_caught_even_with_right_points() {
        // Same point partition, disjoint subspaces: full-space ARI would be
        // 1.0, but cell coverage is disjoint.
        let truth = vec![c(&[0, 1], &[0, 1])];
        let found = vec![c(&[0, 1], &[2, 3])];
        assert_eq!(rnia(&truth, &found), 0.0);
        assert_eq!(ce(&truth, &found), 0.0);
    }

    #[test]
    fn partial_dimension_overlap_scores_fractionally() {
        let truth = vec![c(&[0, 1], &[0, 1])]; // cells: 4
        let found = vec![c(&[0, 1], &[0])]; // cells: 2, all shared
                                            // I = 2, U = 4.
        assert_eq!(rnia(&truth, &found), 0.5);
        assert_eq!(ce(&truth, &found), 0.5);
    }

    #[test]
    fn ce_penalizes_splits_but_rnia_does_not() {
        // Found splits the true cluster in two; coverage is identical, so
        // RNIA = 1, but CE can only match one of the halves.
        let truth = vec![c(&[0, 1, 2, 3], &[0])];
        let found = vec![c(&[0, 1], &[0]), c(&[2, 3], &[0])];
        assert_eq!(rnia(&truth, &found), 1.0);
        assert_eq!(ce(&truth, &found), 0.5);
    }

    #[test]
    fn symmetric_in_arguments() {
        let a = vec![c(&[0, 1, 2], &[0, 1]), c(&[3], &[1, 2])];
        let b = vec![c(&[0, 1], &[0]), c(&[2, 3], &[1, 2])];
        assert_eq!(rnia(&a, &b), rnia(&b, &a));
        assert_eq!(ce(&a, &b), ce(&b, &a));
    }

    #[test]
    fn empty_clusterings_score_one() {
        assert_eq!(rnia(&[], &[]), 1.0);
        assert_eq!(ce(&[], &[]), 1.0);
    }

    #[test]
    fn clusters_from_labels_skips_outliers() {
        let labels = vec![0, 1, -1, 0];
        let subs = vec![vec![0], vec![1, 2]];
        let cl = clusters_from_labels(&labels, &subs);
        assert_eq!(cl[0].points, vec![0, 3]);
        assert_eq!(cl[1].points, vec![1]);
        assert_eq!(cl[1].dims, vec![1, 2]);
    }

    #[test]
    fn overlapping_truth_counts_multiplicity() {
        // A cell covered by two true clusters needs double coverage on the
        // found side to intersect fully.
        let truth = vec![c(&[0], &[0]), c(&[0], &[0])];
        let found_once = vec![c(&[0], &[0])];
        // I = 1, U = 2.
        assert_eq!(rnia(&truth, &found_once), 0.5);
    }
}
