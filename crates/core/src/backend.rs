//! The execution-backend abstraction behind every PROCLUS driver.
//!
//! All PROCLUS variants share one phase loop (sample → greedy → iterate
//! {ComputeL, FindDimensions, AssignPoints, EvaluateClusters, bad-medoid
//! replacement} → refinement with outlier removal). What differs between
//! the CPU path, the simulated-GPU path, and the sharded multi-device path
//! is *where the per-phase numeric primitives execute* — so that is exactly
//! what the [`Backend`] trait owns. The driver (`crate::driver`, reached
//! through [`run_full`] / [`run_core`]) holds every decision: medoid
//! bookkeeping, RNG draws, best-cost tracking, termination, cancellation
//! polls, and phase telemetry. A backend holds every number: the data, the
//! `Dist`/`H` state of Theorems 3.1/3.2, the current `X`, labels, and
//! cluster lists.
//!
//! Contract highlights (see DESIGN.md §12 for the full write-up):
//!
//! * **Phase primitives.** [`Backend::compute_x`] assembles the averaged
//!   per-dimension distance matrix `X` for the current medoids (delta
//!   updates included), [`Backend::find_dims`] selects subspaces from it,
//!   [`Backend::assign`] produces labels + cluster sizes,
//!   [`Backend::evaluate`] the cost, [`Backend::x_from_best`] /
//!   [`Backend::remove_outliers`] the refinement pass. State flows through
//!   the backend between calls; the driver only sees medoid indices,
//!   subspaces, sizes, and costs.
//! * **Barriers.** The driver calls the primitives strictly in phase order;
//!   a multi-device backend must have reduced any cross-shard state
//!   (`H`-sums, cluster sizes, centroids) by the time a primitive returns —
//!   every method return is a phase barrier.
//! * **Cancellation.** The driver polls its [`crate::CancelToken`] at the
//!   top of every iteration and before refinement. Backends whose
//!   primitives are internally long-running (sharded loops over devices)
//!   must additionally poll their own token clone between per-device steps
//!   so a cancel lands mid-phase, not at the next barrier.
//! * **Telemetry.** Phase spans are opened by the driver. Backends with a
//!   simulated clock report it through [`Backend::clock_us`] (the driver
//!   annotates each phase span with the simulated microseconds it
//!   consumed) and may attribute extra counters (cache hits, `ΔL` sizes)
//!   to the innermost open span via the `rec` handle they receive.
//!
//! [`run_full`]: crate::backend::run_full

use proclus_telemetry::Recorder;

use crate::dataset::DataMatrix;
use crate::driver::XEngine;
use crate::error::{ProclusError, Result};
use crate::par::Executor;
use crate::phases::assign::{assign_points, assign_subset, cluster_sizes};
use crate::phases::evaluate::evaluate_clusters;
use crate::phases::find_dimensions::find_dimensions;
use crate::phases::initialization::greedy_select;
use crate::phases::refinement::{remove_outliers, x_from_clusters};
use crate::rng::ProclusRng;

pub use crate::driver::{greedy_phase, grid_core_shared, initialization_phase, run_core, run_full};

/// The per-phase primitives one execution backend provides.
///
/// Implemented by the CPU engines (here), the simulated-GPU backend
/// (`proclus_gpu::GpuBackend`), and the sharded multi-device backend
/// (`proclus_gpu::ShardedBackend`). `m_data` always holds the data indices
/// of the potential medoids `M`; `mcur` holds current medoids as indices
/// into `m_data`; `medoids` holds plain data indices.
pub trait Backend {
    /// Stable lowercase backend name (telemetry metadata, serve responses).
    fn name(&self) -> &'static str;

    /// Number of points in the dataset this backend executes over.
    fn n(&self) -> usize;

    /// The simulated device clock in microseconds, if this backend has
    /// one. The driver annotates each phase span with the delta.
    fn clock_us(&self) -> Option<f64> {
        None
    }

    /// Greedy farthest-point selection of `count` potential medoids from
    /// `sample` (paper Alg. 2). Must consume `rng` identically across
    /// backends so seeds produce the same search path everywhere.
    fn greedy(
        &mut self,
        sample: &[usize],
        count: usize,
        rng: &mut ProclusRng,
        rec: &dyn Recorder,
    ) -> Result<Vec<usize>>;

    /// ComputeL: assemble `X` (and sphere sizes) for the current medoids,
    /// applying the variant's `Dist`/`H` caching and `ΔL` delta updates
    /// (Theorems 3.1/3.2). `X` stays inside the backend.
    fn compute_x(&mut self, m_data: &[usize], mcur: &[usize], rec: &dyn Recorder) -> Result<()>;

    /// FindDimensions: pick the subspaces from the `X` assembled by the
    /// preceding [`Backend::compute_x`] / [`Backend::x_from_best`] call.
    fn find_dims(&mut self, k: usize, l: usize, rec: &dyn Recorder) -> Result<Vec<Vec<usize>>>;

    /// AssignPoints: label every point with its nearest medoid under the
    /// given subspaces; returns the cluster sizes. Labels stay inside the
    /// backend (device-resident for GPU backends).
    fn assign(
        &mut self,
        medoids: &[usize],
        dims: &[Vec<usize>],
        rec: &dyn Recorder,
    ) -> Result<Vec<usize>>;

    /// The current labels, materialized host-side. Called once after
    /// refinement (the final labels) and on telemetry paths (label-churn
    /// counter); never on the per-iteration hot path.
    fn labels(&mut self) -> Result<Vec<i32>>;

    /// EvaluateClusters: the paper's cost (Eq. 9) of the current
    /// assignment under `dims`. `sizes` is the value the preceding
    /// [`Backend::assign`] returned.
    fn evaluate(&mut self, dims: &[Vec<usize>], sizes: &[usize], rec: &dyn Recorder)
        -> Result<f64>;

    /// Snapshot the current labels as the best-so-far assignment (the
    /// refinement phase rebuilds clusters from this snapshot).
    fn save_best(&mut self) -> Result<()>;

    /// Refinement ComputeL: assemble `X` from the best-so-far clusters
    /// (`L ← CBest`, Alg. 1 line 16) instead of the medoid spheres.
    fn x_from_best(&mut self, medoids: &[usize], rec: &dyn Recorder) -> Result<()>;

    /// RemoveOutliers: rewrite the current labels in place, discarding
    /// points outside every medoid's sphere of influence. The driver reads
    /// the final labels back with [`Backend::labels`] afterwards.
    fn remove_outliers(
        &mut self,
        medoids: &[usize],
        dims: &[Vec<usize>],
        rec: &dyn Recorder,
    ) -> Result<()>;

    /// Euclidean distances from the point at data index `medoid` to each of
    /// `points` (data indices), in order. The streaming driver uses this as
    /// its scatter/gather primitive: filling whole `Dist` rows on a cache
    /// miss, patching only the appended columns of a carried-over row, and
    /// running the farthest-point search one pick at a time. Backends
    /// without a streaming path keep the default
    /// [`ProclusError::Unsupported`].
    fn dist_subset(
        &mut self,
        medoid: usize,
        points: &[usize],
        rec: &dyn Recorder,
    ) -> Result<Vec<f32>> {
        let _ = (medoid, points, rec);
        Err(ProclusError::unsupported(format!(
            "backend `{}` does not implement dist_subset (streaming)",
            self.name()
        )))
    }

    /// Seeded AssignPoints for the streaming driver: install `seed_labels`
    /// as the full label array (one entry per point; entries for `todo`
    /// positions are ignored), then assign only the `todo` points against
    /// `medoids` under `dims` (ties to the lower medoid index, exactly as
    /// [`Backend::assign`]). Returns the cluster sizes over *all* points.
    /// After this call the backend's label state must be complete — i.e.
    /// [`Backend::evaluate`], [`Backend::save_best`],
    /// [`Backend::remove_outliers`] and [`Backend::labels`] behave as if
    /// [`Backend::assign`] had labelled every point.
    fn assign_seeded(
        &mut self,
        medoids: &[usize],
        dims: &[Vec<usize>],
        seed_labels: &[i32],
        todo: &[usize],
        rec: &dyn Recorder,
    ) -> Result<Vec<usize>> {
        let _ = (medoids, dims, seed_labels, todo, rec);
        Err(ProclusError::unsupported(format!(
            "backend `{}` does not implement assign_seeded (streaming)",
            self.name()
        )))
    }
}

/// The CPU backend: host execution through [`Executor`], with the variant
/// engines (baseline recompute, FAST `Dist`/`H` cache, FAST* slot cache)
/// supplying `X`.
pub struct CpuBackend<'a> {
    data: &'a DataMatrix,
    exec: Executor,
    engine: Box<dyn XEngine>,
    x: Vec<f64>,
    labels: Vec<i32>,
    best_labels: Vec<i32>,
}

impl<'a> CpuBackend<'a> {
    /// A CPU backend for drivers that compute `X` themselves (the
    /// streaming driver): the internal `X` engine is the baseline
    /// recompute and is only exercised if [`Backend::compute_x`] /
    /// [`Backend::x_from_best`] are actually called.
    pub fn new(data: &'a DataMatrix, exec: Executor) -> Self {
        Self::with_engine(data, exec, Box::new(crate::baseline::BaselineEngine))
    }

    /// Wraps an `X` engine; used by the variant constructors in
    /// `baseline` / `fast` / `fast_star`.
    pub(crate) fn with_engine(
        data: &'a DataMatrix,
        exec: Executor,
        engine: Box<dyn XEngine>,
    ) -> Self {
        Self {
            data,
            exec,
            engine,
            x: Vec::new(),
            labels: Vec::new(),
            best_labels: Vec::new(),
        }
    }
}

impl Backend for CpuBackend<'_> {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn n(&self) -> usize {
        self.data.n()
    }

    fn greedy(
        &mut self,
        sample: &[usize],
        count: usize,
        rng: &mut ProclusRng,
        _rec: &dyn Recorder,
    ) -> Result<Vec<usize>> {
        Ok(greedy_select(self.data, sample, count, rng, &self.exec))
    }

    fn compute_x(&mut self, m_data: &[usize], mcur: &[usize], rec: &dyn Recorder) -> Result<()> {
        let (x, _lsz) = self
            .engine
            .x_matrix(self.data, m_data, mcur, &self.exec, rec);
        self.x = x;
        Ok(())
    }

    fn find_dims(&mut self, k: usize, l: usize, _rec: &dyn Recorder) -> Result<Vec<Vec<usize>>> {
        Ok(find_dimensions(&self.x, k, self.data.d(), l))
    }

    fn assign(
        &mut self,
        medoids: &[usize],
        dims: &[Vec<usize>],
        _rec: &dyn Recorder,
    ) -> Result<Vec<usize>> {
        self.labels = assign_points(self.data, medoids, dims, &self.exec);
        Ok(cluster_sizes(&self.labels, medoids.len()))
    }

    fn labels(&mut self) -> Result<Vec<i32>> {
        Ok(self.labels.clone())
    }

    fn evaluate(
        &mut self,
        dims: &[Vec<usize>],
        _sizes: &[usize],
        _rec: &dyn Recorder,
    ) -> Result<f64> {
        Ok(evaluate_clusters(self.data, &self.labels, dims, &self.exec))
    }

    fn save_best(&mut self) -> Result<()> {
        self.best_labels = self.labels.clone();
        Ok(())
    }

    fn x_from_best(&mut self, medoids: &[usize], _rec: &dyn Recorder) -> Result<()> {
        let (x, _) = x_from_clusters(self.data, medoids, &self.best_labels, &self.exec);
        self.x = x;
        Ok(())
    }

    fn remove_outliers(
        &mut self,
        medoids: &[usize],
        dims: &[Vec<usize>],
        _rec: &dyn Recorder,
    ) -> Result<()> {
        self.labels = remove_outliers(self.data, &self.labels, medoids, dims, &self.exec);
        Ok(())
    }

    fn dist_subset(
        &mut self,
        medoid: usize,
        points: &[usize],
        _rec: &dyn Recorder,
    ) -> Result<Vec<f32>> {
        use crate::distance_simd::{euclidean8, LANES};
        let m_row = self.data.row(medoid);
        let data = self.data;
        let mut out = vec![0.0f32; points.len()];
        // Gathered lane groups: `points` are arbitrary data indices (the
        // RowStore's hole positions), so lanes gather rows by index. Lane l
        // is bitwise-equal to euclidean(m_row, row_l): the operands are
        // swapped, but IEEE negation is exact, so the squared f32
        // difference — and with it the whole chain — is bit-identical.
        // Grain boundaries are LANES-aligned (par::GRAIN_ALIGN), so the
        // lane groups tile identically whether the loop runs as one range
        // or split across workers: each point's distance chain is
        // independent and lands in its own output slot.
        self.exec.for_each_slice(&mut out, |off, sub| {
            let mut i = 0;
            // lint:allow(cancel_polled) -- bounded lane sweep, not a phase loop
            while i + LANES <= sub.len() {
                let rows: [&[f32]; LANES] = std::array::from_fn(|l| data.row(points[off + i + l]));
                sub[i..i + LANES].copy_from_slice(&euclidean8(rows, m_row));
                i += LANES;
            }
            // lint:allow(cancel_polled) -- bounded remainder sweep (< 8 points)
            while i < sub.len() {
                sub[i] = crate::distance::euclidean(m_row, data.row(points[off + i]));
                i += 1;
            }
        });
        Ok(out)
    }

    fn assign_seeded(
        &mut self,
        medoids: &[usize],
        dims: &[Vec<usize>],
        seed_labels: &[i32],
        todo: &[usize],
        _rec: &dyn Recorder,
    ) -> Result<Vec<usize>> {
        if seed_labels.len() != self.data.n() {
            return Err(ProclusError::data(format!(
                "assign_seeded: {} seed labels for {} points",
                seed_labels.len(),
                self.data.n()
            )));
        }
        self.labels = seed_labels.to_vec();
        assign_subset(self.data, medoids, dims, todo, &mut self.labels, &self.exec);
        Ok(cluster_sizes(&self.labels, medoids.len()))
    }
}
