//! Seeded randomness with a defined draw order.
//!
//! PROCLUS is non-deterministic in three places: the sample `Data'`, the
//! greedy start, the initial medoid set, and bad-medoid replacements. All
//! algorithm variants (sequential, FAST, FAST*, multi-core and GPU) draw
//! through this wrapper *in the same order*, which is what makes the
//! seed-for-seed equivalence tests in `tests/equivalence.rs` possible: the
//! variants then explore exactly the same medoid search path and may differ
//! only by floating-point reduction order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG with the handful of draw primitives PROCLUS needs.
#[derive(Debug, Clone)]
pub struct ProclusRng {
    inner: StdRng,
}

impl ProclusRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform draw from `0..bound` (one underlying draw).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Samples `count` distinct indices from `0..n`, in selection order,
    /// via a partial Fisher–Yates shuffle (exactly `count` draws).
    pub fn sample_distinct(&mut self, n: usize, count: usize) -> Vec<usize> {
        assert!(count <= n, "cannot sample {count} distinct from {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..count {
            let j = i + self.inner.gen_range(0..n - i);
            pool.swap(i, j);
        }
        pool.truncate(count);
        pool
    }

    /// Draws indices from `0..n` until one passes `accept`, returning it.
    /// Used for bad-medoid replacement ("random points from M" that are not
    /// already in use, Alg. 1 line 14).
    pub fn draw_until(&mut self, n: usize, mut accept: impl FnMut(usize) -> bool) -> usize {
        loop {
            let c = self.below(n);
            if accept(c) {
                return c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = ProclusRng::new(42);
        let mut b = ProclusRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
        assert_eq!(a.sample_distinct(50, 10), b.sample_distinct(50, 10));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ProclusRng::new(1);
        let mut b = ProclusRng::new(2);
        let sa: Vec<usize> = (0..20).map(|_| a.below(1 << 30)).collect();
        let sb: Vec<usize> = (0..20).map(|_| b.below(1 << 30)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut r = ProclusRng::new(7);
        for _ in 0..50 {
            let s = r.sample_distinct(100, 30);
            assert_eq!(s.len(), 30);
            assert!(s.iter().all(|&x| x < 100));
            assert_eq!(s.iter().collect::<HashSet<_>>().len(), 30);
        }
    }

    #[test]
    fn sample_distinct_full_is_a_permutation() {
        let mut r = ProclusRng::new(3);
        let mut s = r.sample_distinct(10, 10);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_eventually_covers_all_indices() {
        let mut r = ProclusRng::new(11);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.extend(r.sample_distinct(20, 5));
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn draw_until_respects_predicate() {
        let mut r = ProclusRng::new(5);
        let banned: HashSet<usize> = (0..90).collect();
        for _ in 0..20 {
            let x = r.draw_until(100, |c| !banned.contains(&c));
            assert!(x >= 90);
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_panics_when_oversampling() {
        ProclusRng::new(0).sample_distinct(3, 4);
    }
}
