//! The unified run configuration: one `Config` selects the algorithm
//! variant, the backend, the execution width, an optional parameter grid,
//! and whether telemetry is collected.
//!
//! [`crate::run`] consumes a `Config` for the CPU backend; the
//! `proclus-gpu` crate's `run`/`run_on` consume the *same* type for both
//! backends, so a `Config` is the single currency every entry point speaks.

use proclus_telemetry::TelemetryReport;

use crate::error::ProclusError;
use crate::multi_param::{ReuseLevel, Setting};
use crate::params::Params;
use crate::result::Clustering;

/// Which member of the PROCLUS family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algo {
    /// The SIGMOD '99 baseline: every iteration recomputes all distances.
    Baseline,
    /// FAST-PROCLUS (§3): `Dist`/`H` caches + incremental `ΔL` updates.
    #[default]
    Fast,
    /// FAST*-PROCLUS (§3.2): the `O(k·n)`-space slot-cache variant.
    FastStar,
}

impl Algo {
    /// Stable lowercase name (used in telemetry metadata and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            Algo::Baseline => "baseline",
            Algo::Fast => "fast",
            Algo::FastStar => "fast_star",
        }
    }

    /// Parses the CLI spelling (`baseline` / `fast` / `fast_star` or
    /// `fast-star`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "baseline" => Some(Algo::Baseline),
            "fast" => Some(Algo::Fast),
            "fast_star" | "fast-star" | "faststar" => Some(Algo::FastStar),
            _ => None,
        }
    }
}

/// Where the algorithm executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Host execution via [`crate::par::Executor`] (sequential or
    /// multi-threaded, see [`Config::threads`]).
    #[default]
    Cpu,
    /// The simulated-GPU kernels of the `proclus-gpu` crate. Only available
    /// through `proclus_gpu::run` / `run_on`; [`crate::run`] reports
    /// [`crate::ProclusError::Unsupported`] for it.
    Gpu,
    /// Points partitioned across [`crate::Params::devices`] simulated GPU
    /// devices with medoid broadcast and phase-boundary reductions. Only
    /// available through `proclus_gpu::run` / `run_on`;
    /// [`crate::run`] reports [`crate::ProclusError::Unsupported`] for it.
    Sharded,
}

impl Backend {
    /// Stable lowercase name (used in telemetry metadata and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Cpu => "cpu",
            Backend::Gpu => "gpu",
            Backend::Sharded => "sharded",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cpu" => Some(Backend::Cpu),
            "gpu" => Some(Backend::Gpu),
            "sharded" | "multi-gpu" | "multigpu" => Some(Backend::Sharded),
            _ => None,
        }
    }
}

/// A multi-parameter exploration grid (§3.1): run every [`Setting`] with
/// the given reuse level instead of a single `(k, l)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    /// The `(k, l)` settings, run in order.
    pub settings: Vec<Setting>,
    /// How much computation is shared across settings (FAST only; the
    /// baseline always runs independently).
    pub reuse: ReuseLevel,
}

impl Grid {
    /// A grid with the given settings and reuse level.
    pub fn new(settings: Vec<Setting>, reuse: ReuseLevel) -> Self {
        Self { settings, reuse }
    }
}

/// The unified run configuration consumed by [`crate::run`] (CPU) and
/// `proclus_gpu::run` (CPU + GPU).
///
/// ```
/// use proclus::{Algo, Backend, Config, Params};
/// let config = Config::new(Params::new(4, 3))
///     .with_algo(Algo::FastStar)
///     .with_threads(4)
///     .with_telemetry(true);
/// assert_eq!(config.backend, Backend::Cpu);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Algorithm parameters (used as the base setting when `grid` is set).
    pub params: Params,
    /// Algorithm variant.
    pub algo: Algo,
    /// Execution backend.
    pub backend: Backend,
    /// CPU worker threads; `0` or `1` means sequential. Ignored by the GPU
    /// backend.
    pub threads: usize,
    /// Collect phase spans and algorithm counters into
    /// [`RunOutput::telemetry`].
    pub telemetry: bool,
    /// Optional multi-parameter grid; `None` runs the single setting in
    /// `params`.
    pub grid: Option<Grid>,
}

impl Config {
    /// A single-setting CPU FAST-PROCLUS run with telemetry off.
    pub fn new(params: Params) -> Self {
        Self {
            params,
            algo: Algo::default(),
            backend: Backend::default(),
            threads: 0,
            telemetry: false,
            grid: None,
        }
    }

    /// Sets the algorithm variant.
    pub fn with_algo(mut self, algo: Algo) -> Self {
        self.algo = algo;
        self
    }

    /// Sets the backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the CPU thread count (`0`/`1` = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables telemetry collection.
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets a multi-parameter grid.
    pub fn with_grid(mut self, grid: Grid) -> Self {
        self.grid = Some(grid);
        self
    }
}

/// Everything a run produced: one clustering per setting (exactly one for
/// non-grid runs) plus the telemetry report when it was requested.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// One clustering per *successful* setting, in setting order. For
    /// non-grid runs this is exactly one entry (a failed single run is an
    /// `Err` from `run`, never an empty output).
    pub clusterings: Vec<Clustering>,
    /// Grid settings that were skipped instead of run: `(setting index,
    /// error)` pairs, in setting order. Empty for non-grid runs and for
    /// grids where every setting succeeded. A grid entry with invalid
    /// parameters (or a cancelled per-setting token) lands here while the
    /// remaining settings still execute.
    pub setting_errors: Vec<(usize, ProclusError)>,
    /// The recorded span tree and counters, when
    /// [`Config::telemetry`] was on.
    pub telemetry: Option<TelemetryReport>,
    /// End-to-end wall-clock time of the run, milliseconds.
    pub wall_ms: f64,
}

impl RunOutput {
    /// The single clustering of a non-grid run (first setting otherwise).
    pub fn clustering(&self) -> &Clustering {
        &self.clusterings[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_cpu_fast_sequential() {
        let c = Config::new(Params::new(4, 3));
        assert_eq!(c.algo, Algo::Fast);
        assert_eq!(c.backend, Backend::Cpu);
        assert_eq!(c.threads, 0);
        assert!(!c.telemetry);
        assert!(c.grid.is_none());
    }

    #[test]
    fn names_and_parse_round_trip() {
        for algo in [Algo::Baseline, Algo::Fast, Algo::FastStar] {
            assert_eq!(Algo::parse(algo.name()), Some(algo));
        }
        assert_eq!(Algo::parse("fast-star"), Some(Algo::FastStar));
        assert_eq!(Algo::parse("nope"), None);
        for b in [Backend::Cpu, Backend::Gpu, Backend::Sharded] {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("multi-gpu"), Some(Backend::Sharded));
        assert_eq!(Backend::parse("tpu"), None);
    }
}
