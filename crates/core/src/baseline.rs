//! The baseline PROCLUS algorithm (Aggarwal et al., SIGMOD '99, as
//! summarized in §2.1 of the EDBT '22 paper): every iteration recomputes
//! all point-to-medoid distances and distance sums from scratch.

use proclus_telemetry::{counters, Recorder};

use crate::backend::CpuBackend;
use crate::cancel::CancelToken;
use crate::dataset::DataMatrix;
use crate::driver::{run_full, XEngine};
use crate::error::Result;
use crate::par::Executor;
use crate::params::Params;
use crate::phases::compute_l::{compute_x_baseline, medoid_deltas};
use crate::result::Clustering;

/// The baseline `X` engine: ComputeL + FindDimensions sums recomputed every
/// iteration — the `O(n · k · d)` cost FAST-PROCLUS eliminates.
pub(crate) struct BaselineEngine;

impl XEngine for BaselineEngine {
    fn x_matrix(
        &mut self,
        data: &DataMatrix,
        m_data: &[usize],
        mcur: &[usize],
        exec: &Executor,
        rec: &dyn Recorder,
    ) -> (Vec<f64>, Vec<usize>) {
        let medoids: Vec<usize> = mcur.iter().map(|&mi| m_data[mi]).collect();
        let k = medoids.len();
        // k·(k−1) medoid-pair deltas plus a full n·k sphere recomputation —
        // the from-scratch cost the Dist/H caches eliminate.
        rec.add(
            counters::DISTANCES_COMPUTED,
            (k * (k - 1) + data.n() * k) as u64,
        );
        let deltas = medoid_deltas(data, &medoids);
        compute_x_baseline(data, &medoids, &deltas, exec)
    }
}

pub(crate) fn run_baseline(
    data: &DataMatrix,
    params: &Params,
    exec: &Executor,
    rec: &dyn Recorder,
    cancel: &CancelToken,
) -> Result<Clustering> {
    params.validate(data)?;
    let mut backend = CpuBackend::with_engine(data, *exec, Box::new(BaselineEngine));
    run_full(&mut backend, params, rec, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::OUTLIER;

    fn proclus(data: &DataMatrix, params: &Params) -> Result<Clustering> {
        run_baseline(
            data,
            params,
            &Executor::Sequential,
            &proclus_telemetry::NullRecorder,
            &CancelToken::new(),
        )
    }

    fn proclus_par(data: &DataMatrix, params: &Params, threads: usize) -> Result<Clustering> {
        run_baseline(
            data,
            params,
            &Executor::Parallel { threads },
            &proclus_telemetry::NullRecorder,
            &CancelToken::new(),
        )
    }

    /// Two well-separated Gaussian-ish blobs in dims {0,1} of 4-D data.
    fn blob_data(n: usize) -> DataMatrix {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0f32 } else { 50.0 };
                let noise = |s: usize| ((i * s) % 17) as f32 * 0.05;
                vec![
                    c + noise(3),
                    c + noise(5),
                    ((i * 7) % 100) as f32, // wild dim
                    ((i * 11) % 100) as f32,
                ]
            })
            .collect();
        DataMatrix::from_rows(&rows).unwrap()
    }

    fn small_params() -> Params {
        Params::new(2, 2).with_a(30).with_b(5).with_seed(7)
    }

    #[test]
    fn produces_structurally_valid_clustering() {
        let data = blob_data(400);
        let result = proclus(&data, &small_params()).unwrap();
        result.validate_structure(400, 4, 2).unwrap();
        assert!(result.iterations >= 1);
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let data = blob_data(400);
        let result = proclus(&data, &small_params()).unwrap();
        // Points with even index form one blob; odd the other. Measure the
        // majority agreement of non-outliers.
        let mut agree = [[0usize; 2]; 2];
        for (p, &lab) in result.labels.iter().enumerate() {
            if lab >= 0 {
                agree[p % 2][lab as usize] += 1;
            }
        }
        let correct = agree[0][0].max(agree[0][1]) + agree[1][0].max(agree[1][1]);
        let total: usize = agree.iter().flatten().sum();
        assert!(
            correct as f64 / total as f64 > 0.95,
            "blob recovery too poor: {agree:?}"
        );
    }

    #[test]
    fn finds_the_clustered_subspace() {
        let data = blob_data(400);
        let result = proclus(&data, &small_params()).unwrap();
        for s in &result.subspaces {
            assert!(
                s.contains(&0) || s.contains(&1),
                "subspaces should prefer the clustered dims, got {s:?}"
            );
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let data = blob_data(300);
        let a = proclus(&data, &small_params()).unwrap();
        let b = proclus(&data, &small_params()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_may_differ_but_stay_valid() {
        let data = blob_data(300);
        for seed in [1u64, 2, 3] {
            let r = proclus(&data, &small_params().with_seed(seed)).unwrap();
            r.validate_structure(300, 4, 2).unwrap();
        }
    }

    #[test]
    fn parallel_follows_the_same_search_path() {
        let data = blob_data(400);
        let p = small_params();
        let seq = proclus(&data, &p).unwrap();
        let par = proclus_par(&data, &p, 4).unwrap();
        assert_eq!(seq.medoids, par.medoids);
        assert_eq!(seq.subspaces, par.subspaces);
        assert_eq!(seq.labels, par.labels);
        assert!((seq.cost - par.cost).abs() < 1e-9);
    }

    #[test]
    fn isolated_point_becomes_outlier() {
        let mut rows: Vec<Vec<f32>> = (0..200)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0f32 } else { 30.0 };
                vec![
                    c + ((i * 3) % 10) as f32 * 0.1,
                    c + ((i * 5) % 10) as f32 * 0.1,
                ]
            })
            .collect();
        rows.push(vec![1.0e4, -1.0e4]);
        let data = DataMatrix::from_rows(&rows).unwrap();
        let result = proclus(&data, &small_params()).unwrap();
        assert_eq!(result.labels[200], OUTLIER);
    }

    #[test]
    fn rejects_invalid_params() {
        let data = blob_data(100);
        assert!(proclus(&data, &Params::new(1, 2)).is_err());
    }
}
