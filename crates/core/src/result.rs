//! The output of a PROCLUS run: `k` disjoint projected clusters plus
//! outliers.

/// Label assigned to outliers in [`Clustering::labels`].
pub const OUTLIER: i32 = -1;

/// A projected clustering: `k` medoids, one subspace per cluster, and a
/// label per point (`OUTLIER` for points the refinement phase rejected).
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Medoid data indices (length `k`).
    pub medoids: Vec<usize>,
    /// Subspace `D_i` per cluster: sorted dimension indices, at least two
    /// each, `Σ|D_i| = k · l`.
    pub subspaces: Vec<Vec<usize>>,
    /// Cluster label per point in `0..k`, or [`OUTLIER`].
    pub labels: Vec<i32>,
    /// Best weighted cost found during the iterative phase (Eq. 2).
    pub cost: f64,
    /// Cost of the refined assignment (before outlier removal).
    pub refined_cost: f64,
    /// Total iterative-phase iterations executed.
    pub iterations: usize,
    /// True if the loop stopped via `itrPat`, false if it hit the
    /// `max_total_iterations` safety cap.
    pub converged: bool,
}

impl Clustering {
    /// Number of clusters `k`.
    pub fn k(&self) -> usize {
        self.medoids.len()
    }

    /// Point indices per cluster (outliers excluded).
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.k()];
        for (p, &c) in self.labels.iter().enumerate() {
            if c >= 0 {
                out[c as usize].push(p);
            }
        }
        out
    }

    /// Cluster sizes (outliers excluded).
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &c in &self.labels {
            if c >= 0 {
                sizes[c as usize] += 1;
            }
        }
        sizes
    }

    /// Number of points labeled as outliers.
    pub fn num_outliers(&self) -> usize {
        self.labels.iter().filter(|&&c| c == OUTLIER).count()
    }

    /// Internal consistency checks; used by tests across all variants.
    ///
    /// Verifies the structural invariants the paper states: `k` medoids,
    /// each subspace has ≥ 2 sorted distinct dims, the subspace sizes sum
    /// to `k · l`, labels are in range, and each medoid belongs to its own
    /// cluster (medoids are never outliers).
    pub fn validate_structure(&self, n: usize, d: usize, l: usize) -> crate::Result<()> {
        let k = self.k();
        if self.subspaces.len() != k {
            return Err(crate::ProclusError::data(format!(
                "{} subspaces for {k} medoids",
                self.subspaces.len()
            )));
        }
        if self.labels.len() != n {
            return Err(crate::ProclusError::data(format!(
                "{} labels for {n} points",
                self.labels.len()
            )));
        }
        let total: usize = self.subspaces.iter().map(|s| s.len()).sum();
        if total != k * l {
            return Err(crate::ProclusError::data(format!(
                "subspace sizes sum to {total}, expected {}",
                k * l
            )));
        }
        for (i, s) in self.subspaces.iter().enumerate() {
            if s.len() < 2 {
                return Err(crate::ProclusError::data(format!(
                    "subspace {i} has fewer than 2 dims"
                )));
            }
            if s.windows(2).any(|w| w[0] >= w[1]) {
                return Err(crate::ProclusError::data(format!(
                    "subspace {i} not sorted/distinct: {s:?}"
                )));
            }
            if s.iter().any(|&j| j >= d) {
                return Err(crate::ProclusError::data(format!(
                    "subspace {i} has dim out of range: {s:?}"
                )));
            }
        }
        for &lab in &self.labels {
            if lab != OUTLIER && !(0..k as i32).contains(&lab) {
                return Err(crate::ProclusError::data(format!(
                    "label {lab} out of range"
                )));
            }
        }
        for (i, &m) in self.medoids.iter().enumerate() {
            if m >= n {
                return Err(crate::ProclusError::data(format!(
                    "medoid index {m} out of range"
                )));
            }
            if self.labels[m] != i as i32 {
                return Err(crate::ProclusError::data(format!(
                    "medoid {i} (point {m}) has label {} instead of {i}",
                    self.labels[m]
                )));
            }
        }
        if !self.cost.is_finite() || self.cost < 0.0 {
            return Err(crate::ProclusError::data(format!(
                "cost {} not a finite non-negative value",
                self.cost
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Clustering {
        Clustering {
            medoids: vec![0, 3],
            subspaces: vec![vec![0, 1], vec![1, 2]],
            labels: vec![0, 0, OUTLIER, 1, 1],
            cost: 0.5,
            refined_cost: 0.4,
            iterations: 3,
            converged: true,
        }
    }

    #[test]
    fn clusters_partition_non_outliers() {
        let c = sample();
        let cl = c.clusters();
        assert_eq!(cl[0], vec![0, 1]);
        assert_eq!(cl[1], vec![3, 4]);
        assert_eq!(c.num_outliers(), 1);
        assert_eq!(c.cluster_sizes(), vec![2, 2]);
    }

    #[test]
    fn validate_accepts_consistent_result() {
        assert_eq!(sample().validate_structure(5, 3, 2), Ok(()));
    }

    #[test]
    fn validate_rejects_wrong_subspace_total() {
        let mut c = sample();
        c.subspaces[0] = vec![0, 1, 2];
        assert!(c.validate_structure(5, 3, 2).is_err());
    }

    #[test]
    fn validate_rejects_unsorted_subspace() {
        let mut c = sample();
        c.subspaces[0] = vec![1, 0];
        assert!(c.validate_structure(5, 3, 2).is_err());
    }

    #[test]
    fn validate_rejects_outlier_medoid() {
        let mut c = sample();
        c.labels[0] = OUTLIER;
        assert!(c.validate_structure(5, 3, 2).is_err());
    }
}
