//! Fork–join parallelism substrate for the multi-core CPU variants.
//!
//! The paper parallelizes PROCLUS's hot loops on the CPU with OpenMP
//! (`#pragma omp parallel for` with per-thread partials followed by a
//! reduction). This module provides the same structure on top of a
//! **persistent work-stealing thread pool**: [`Executor`] carries the degree
//! of parallelism, and the three primitives decompose an index range (or an
//! output slice) into *grains* — fixed sub-ranges whose boundaries are a
//! pure function of `len` alone — executed by a lazily-initialized global
//! pool whose workers park between phases (no OS-thread spawn on the hot
//! path) and steal grains from each other's Chase–Lev-style deques when
//! their own run dry.
//!
//! # Determinism
//!
//! Floating-point reduction is not split-invariant, so bitwise-identical
//! results across executors require every mode to use the *same*
//! decomposition. [`grains_for`] depends only on `len` — never on the
//! executor variant or thread count — and `map_chunks` returns one partial
//! per grain **in grain order** for the caller to reduce. Which OS thread
//! executes a grain is scheduling-dependent, but each grain writes its own
//! slot (or a disjoint slice region), so the reduced result is identical
//! whether grains ran inline ([`Executor::Sequential`]), on statically
//! assigned scoped threads ([`Executor::StaticSplit`]), or on the
//! work-stealing pool ([`Executor::Parallel`]). Below [`SEQ_CROSSOVER`] the
//! whole range is a single grain, which both skips fork overhead for short
//! phases and preserves the exact accumulation order of a plain sequential
//! loop. See DESIGN.md §15 for the full argument.
//!
//! # Pool lifecycle
//!
//! One global pool serves the whole process. Phases are serialized by a
//! submission lock, so concurrent callers (e.g. serve jobs) interleave at
//! phase granularity on the same workers instead of oversubscribing cores.
//! Submissions from inside a grain body run inline over the same grains
//! (same bits, no deadlock). Pool activity is observable through
//! [`pool_stats`] and exported as telemetry counters by the run driver.

use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicIsize, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::error::ProclusError;

/// Ranges shorter than this run as a single grain: fork overhead would
/// dwarf the loop body, and a single grain keeps the exact accumulation
/// order of a plain sequential loop.
const SEQ_CROSSOVER: usize = 2048;
/// Minimum grain size: large enough that a grain amortizes the 8-lane SIMD
/// strip kernels in `distance_simd` (dozens of full lane groups per grain).
const MIN_GRAIN: usize = 512;
/// Upper bound on grains per phase; caps scheduling overhead on huge `len`.
const MAX_GRAINS: usize = 256;
/// Grain sizes are rounded up to a multiple of this so interior grain
/// boundaries never split an 8-lane SIMD group. Must equal
/// `distance_simd::LANES` (asserted in tests).
const GRAIN_ALIGN: usize = 8;

/// Decomposes `0..len` into fixed grains, returning `(grain_size,
/// grain_count)`. Pure function of `len` only — **not** of the executor
/// mode or thread count — which is what makes per-grain reductions
/// deterministic across all executors and thread counts. Public so the
/// `par_bench` harness can model the exact decomposition the pool runs.
pub fn grains_for(len: usize) -> (usize, usize) {
    if len <= SEQ_CROSSOVER {
        return (len.max(1), 1);
    }
    let target = (len / MIN_GRAIN).clamp(1, MAX_GRAINS);
    let grain = len.div_ceil(target).div_ceil(GRAIN_ALIGN) * GRAIN_ALIGN;
    (grain, len.div_ceil(grain))
}

/// Where loop bodies execute: inline, or across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// Run loop bodies inline on the calling thread.
    Sequential,
    /// Run grains on the persistent work-stealing pool, with up to this
    /// many participants per phase (clamped to ≥ 1 and to the core count).
    Parallel {
        /// Number of worker threads.
        threads: usize,
    },
    /// Legacy comparator: fork fresh scoped threads per call and assign
    /// each a contiguous block of the *same* grains. Kept for benchmarks
    /// and equivalence tests against the work-stealing pool.
    StaticSplit {
        /// Number of worker threads.
        threads: usize,
    },
}

fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Executor {
    /// An executor using all available cores, honoring a valid
    /// `PROCLUS_THREADS` override (invalid or absent values fall back to
    /// the detected core count; use [`Executor::try_all_cores`] to surface
    /// the error instead).
    pub fn all_cores() -> Self {
        Self::try_all_cores().unwrap_or(Executor::Parallel {
            threads: detected_cores(),
        })
    }

    /// Like [`Executor::all_cores`], but returns a typed error when the
    /// `PROCLUS_THREADS` environment variable is set to garbage (anything
    /// but a positive integer) instead of silently falling back.
    pub fn try_all_cores() -> Result<Self, ProclusError> {
        let threads = match std::env::var("PROCLUS_THREADS") {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(t) if t >= 1 => t,
                _ => {
                    return Err(ProclusError::params(format!(
                        "PROCLUS_THREADS must be a positive integer, got {raw:?}"
                    )))
                }
            },
            Err(std::env::VarError::NotPresent) => detected_cores(),
            Err(std::env::VarError::NotUnicode(_)) => {
                return Err(ProclusError::params(
                    "PROCLUS_THREADS must be a positive integer, got non-UTF-8 bytes",
                ))
            }
        };
        Ok(Executor::Parallel { threads })
    }

    /// The worker count (1 for [`Executor::Sequential`]).
    pub fn threads(&self) -> usize {
        match *self {
            Executor::Sequential => 1,
            Executor::Parallel { threads } | Executor::StaticSplit { threads } => threads.max(1),
        }
    }

    /// Runs `run(g)` for every grain `g` in `0..grains`, dispatching on the
    /// executor mode. Grain-to-thread placement varies; the set of grains
    /// (and everything derived from it) does not.
    fn execute(&self, grains: usize, run: &(dyn Fn(usize) + Sync)) {
        let threads = self.threads();
        if grains <= 1 || threads <= 1 || in_pool() {
            for g in 0..grains {
                run(g);
            }
            return;
        }
        match *self {
            Executor::Sequential => unreachable!("threads() == 1"),
            Executor::Parallel { .. } => pool_execute(threads, grains, run),
            Executor::StaticSplit { .. } => {
                let w = threads.min(grains);
                let per = grains.div_ceil(w);
                crossbeam::thread::scope(|scope| {
                    for q in 0..w {
                        scope.spawn(move |_| {
                            for g in q * per..((q + 1) * per).min(grains) {
                                run(g);
                            }
                        });
                    }
                })
                .expect("parallel worker panicked");
            }
        }
    }

    /// Splits `0..len` into grains, runs `body(range)` on each (in
    /// parallel), and returns the per-grain states **in grain order** for
    /// the caller to reduce.
    ///
    /// `make` builds each grain's private accumulator — the OpenMP
    /// "per-thread partial result" pattern the paper relies on to avoid
    /// atomic contention. Because the grain decomposition is a pure
    /// function of `len`, the returned partials (and any in-order
    /// reduction of them) are bitwise-identical across executor modes and
    /// thread counts.
    pub fn map_chunks<S, MF, BF>(&self, len: usize, make: MF, body: BF) -> Vec<S>
    where
        S: Send,
        MF: Fn() -> S + Sync,
        BF: Fn(&mut S, Range<usize>) + Sync,
    {
        let (grain, grains) = grains_for(len);
        let mut out: Vec<Option<S>> = (0..grains).map(|_| None).collect();
        let slots = SendPtr(out.as_mut_ptr());
        self.execute(grains, &|g| {
            let lo = g * grain;
            let hi = (lo + grain).min(len);
            let mut s = make();
            body(&mut s, lo..hi);
            // SAFETY: each grain index `g < grains` writes only its own
            // slot, and `out` outlives `execute` (which blocks until every
            // grain completed).
            unsafe { *slots.get().add(g) = Some(s) };
        });
        out.into_iter().map(|s| s.expect("grain state")).collect()
    }

    /// Splits `out` into one contiguous sub-slice per grain and runs
    /// `body(global_offset, sub_slice)` on each in parallel. Used for
    /// loops whose only side effect is writing disjoint output elements
    /// (e.g. the label array in AssignPoints).
    pub fn for_each_slice<T, BF>(&self, out: &mut [T], body: BF)
    where
        T: Send,
        BF: Fn(usize, &mut [T]) + Sync,
    {
        let len = out.len();
        let (grain, grains) = grains_for(len);
        let base = SendPtr(out.as_mut_ptr());
        self.execute(grains, &|g| {
            let lo = g * grain;
            let hi = (lo + grain).min(len);
            // SAFETY: grains tile `0..len` disjointly, so each sub-slice
            // is exclusive to its grain; `out` outlives `execute`.
            let sub = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            body(lo, sub);
        });
    }

    /// Splits *several* equal-length output slices at the same grain
    /// boundaries and runs `body(global_offset, strips)` on each grain,
    /// where `strips[r]` is slice `r`'s sub-range for that grain. This is
    /// the batched form of [`Executor::for_each_slice`]: the cache-blocked
    /// `Dist` computation writes one column strip of *every* fresh medoid
    /// row per grain, so each data tile is read once and reused across all
    /// rows instead of once per row.
    pub fn for_each_strips<T, BF>(&self, outs: &mut [&mut [T]], body: BF)
    where
        T: Send,
        BF: Fn(usize, &mut [&mut [T]]) + Sync,
    {
        let Some(len) = outs.first().map(|o| o.len()) else {
            return;
        };
        debug_assert!(outs.iter().all(|o| o.len() == len), "ragged strips");
        let (grain, grains) = grains_for(len);
        let bases: Vec<SendPtr<T>> = outs.iter_mut().map(|o| SendPtr(o.as_mut_ptr())).collect();
        self.execute(grains, &|g| {
            let lo = g * grain;
            let hi = (lo + grain).min(len);
            let mut strips: Vec<&mut [T]> = bases
                .iter()
                // SAFETY: grains tile `0..len` disjointly, so each strip
                // sub-range is exclusive to its grain; every slice in
                // `outs` outlives `execute`.
                .map(|p| unsafe { std::slice::from_raw_parts_mut(p.get().add(lo), hi - lo) })
                .collect();
            body(lo, &mut strips);
        });
    }
}

/// Raw-pointer wrapper so per-grain closures can write disjoint regions of
/// a caller-owned buffer from worker threads.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// Accessor (rather than direct field reads) so closures capture the
    /// `Sync` wrapper itself, not the raw `*mut` field — edition-2021
    /// disjoint capture would otherwise grab the non-`Sync` pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        SendPtr(self.0)
    }
}

// SAFETY: every use writes disjoint regions (one slot or sub-slice per
// grain) and the submitter blocks until all grains complete, so the
// pointee outlives all accesses and no two threads alias a region.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as above — the wrapper is shared across workers but each grain
// touches a disjoint region.
unsafe impl<T: Send> Sync for SendPtr<T> {}

// ---------------------------------------------------------------------------
// Persistent work-stealing pool
// ---------------------------------------------------------------------------

/// Cumulative counters for the global pool (process lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Grains executed by pool phases (inline/sequential runs excluded).
    pub tasks_executed: u64,
    /// Grains successfully taken from another participant's deque.
    pub steals: u64,
    /// Steal attempts that lost a race or found the victim empty.
    pub steal_failures: u64,
    /// Times a pool worker parked waiting for a phase.
    pub parks: u64,
    /// Times a parked pool worker was woken by a new phase.
    pub unparks: u64,
}

static TASKS_EXECUTED: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);
static STEAL_FAILURES: AtomicU64 = AtomicU64::new(0);
static PARKS: AtomicU64 = AtomicU64::new(0);
static UNPARKS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the global pool's cumulative counters. Counters are
/// process-wide: concurrent runs all contribute to the same totals, so
/// callers interested in a single run should record a before/after delta.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        tasks_executed: TASKS_EXECUTED.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
        steal_failures: STEAL_FAILURES.load(Ordering::Relaxed),
        parks: PARKS.load(Ordering::Relaxed),
        unparks: UNPARKS.load(Ordering::Relaxed),
    }
}

/// Number of OS threads the global pool has spawned so far (0 until the
/// first parallel phase). Bounded by the detected core count regardless of
/// how many concurrent submitters request parallelism — the regression
/// guard for the serve layer's shared-pool contract.
pub fn pool_thread_count() -> usize {
    POOL.get().map_or(0, |p| lock_recover(&p.state).workers)
}

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

fn in_pool() -> bool {
    IN_POOL.with(|f| f.get())
}

/// Poison-tolerant lock: a phase that panicked has already stored its
/// payload for `resume_unwind`, and every pool structure stays consistent
/// across unwinds, so later phases must not cascade-fail on poison.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct PoolState {
    /// Bumped on every submission so parked workers can tell a fresh phase
    /// from the one they already served.
    generation: u64,
    phase: Option<Arc<Phase>>,
    /// OS threads spawned so far (grows lazily up to `pool_cap() - 1`).
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here between phases.
    work_cv: Condvar,
    /// Serializes phases across submitting threads: concurrent callers
    /// (serve jobs, shards) interleave at phase granularity on the one
    /// pool instead of oversubscribing cores.
    submit_lock: Mutex<()>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            generation: 0,
            phase: None,
            workers: 0,
        }),
        work_cv: Condvar::new(),
        submit_lock: Mutex::new(()),
    })
}

/// Max participants per phase (submitter + pool workers). The `max(2)`
/// keeps two-participant phases possible on single-core machines so the
/// stealing paths stay exercised everywhere.
fn pool_cap() -> usize {
    detected_cores().max(2)
}

fn ensure_workers(pool: &'static Pool, want: usize) {
    let mut st = lock_recover(&pool.state);
    while st.workers < want {
        st.workers += 1;
        let name = format!("proclus-par-{}", st.workers);
        std::thread::Builder::new()
            .name(name)
            .spawn(move || worker_loop(pool))
            .expect("spawn pool worker");
    }
}

fn worker_loop(pool: &'static Pool) {
    // Pool workers never submit nested phases of their own: anything a
    // grain body forks runs inline (same grains, same bits, no deadlock).
    IN_POOL.with(|f| f.set(true));
    let mut seen_gen = 0u64;
    loop {
        let phase = {
            let mut st = lock_recover(&pool.state);
            loop {
                if st.generation != seen_gen {
                    seen_gen = st.generation;
                    if let Some(ph) = st.phase.clone() {
                        break ph;
                    }
                }
                PARKS.fetch_add(1, Ordering::Relaxed);
                st = pool
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                UNPARKS.fetch_add(1, Ordering::Relaxed);
            }
        };
        phase.claim_and_run();
    }
}

fn pool_execute(threads: usize, grains: usize, run: &(dyn Fn(usize) + Sync)) {
    let w = threads.min(grains).min(pool_cap());
    if w <= 1 {
        for g in 0..grains {
            run(g);
        }
        return;
    }
    let pool = pool();
    ensure_workers(pool, w - 1);
    let submit = lock_recover(&pool.submit_lock);
    let phase = Arc::new(Phase::new(w, grains, run));
    {
        let mut st = lock_recover(&pool.state);
        st.generation = st.generation.wrapping_add(1);
        st.phase = Some(phase.clone());
    }
    pool.work_cv.notify_all();
    // The submitter is always participant 0, so a phase makes progress
    // even if every pool worker is slow to wake.
    IN_POOL.with(|f| f.set(true));
    phase.run(0);
    IN_POOL.with(|f| f.set(false));
    phase.wait_done();
    {
        let mut st = lock_recover(&pool.state);
        if st.phase.as_ref().is_some_and(|p| Arc::ptr_eq(p, &phase)) {
            st.phase = None;
        }
    }
    drop(submit);
    let payload = lock_recover(&phase.panic).take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

/// Lifetime-erased handle to the submitter's grain closure.
///
/// SAFETY invariant: the submitter blocks in [`pool_execute`] until every
/// grain has completed, and participants dereference the pointer only
/// while holding a claimed grain (claims are unique via the deque
/// protocol), so the closure outlives every dereference.
struct TaskRef(*const (dyn Fn(usize) + Sync));

// SAFETY: see the invariant on [`TaskRef`].
unsafe impl Send for TaskRef {}
// SAFETY: see the invariant on [`TaskRef`].
unsafe impl Sync for TaskRef {}

struct Phase {
    /// One deque per participant slot; slot 0 is the submitter.
    queues: Vec<Deque>,
    /// Next pool-worker slot to hand out (starts at 1; slot 0 reserved).
    tickets: AtomicUsize,
    /// Grains not yet completed; the last decrement signals `done`.
    remaining: AtomicUsize,
    task: TaskRef,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Phase {
    fn new(w: usize, grains: usize, run: &(dyn Fn(usize) + Sync)) -> Self {
        let per = grains.div_ceil(w);
        let queues = (0..w)
            .map(|q| Deque::new_desc((q * per).min(grains), ((q + 1) * per).min(grains)))
            .collect();
        Phase {
            queues,
            tickets: AtomicUsize::new(1),
            remaining: AtomicUsize::new(grains),
            // SAFETY: erases the closure's borrow lifetime to store it in
            // the phase; the [`TaskRef`] invariant (submitter outlives all
            // dereferences) keeps this sound.
            task: TaskRef(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync + '_),
                    *const (dyn Fn(usize) + Sync),
                >(std::ptr::from_ref(run))
            }),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }

    /// Pool-worker entry: claim a participant slot, or bail if the phase
    /// is already fully staffed (`Config.threads` caps parallelism even
    /// when the pool has more workers).
    fn claim_and_run(&self) {
        let slot = self.tickets.fetch_add(1, Ordering::SeqCst);
        if slot < self.queues.len() {
            self.run(slot);
        }
    }

    fn run(&self, slot: usize) {
        // Drain the own block in ascending grain order (cache locality).
        while let Some(g) = self.queues[slot].take() {
            self.exec_grain(g);
        }
        // Own block exhausted: steal. Grains never re-enter a queue, so
        // once a full sweep finds every queue empty there is no more
        // claimable work for this participant and it can leave (grains
        // still in flight elsewhere are counted by `remaining`).
        let nq = self.queues.len();
        let mut seed = (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        loop {
            let mut found = None;
            for _ in 0..nq {
                let v = (xorshift(&mut seed) as usize) % nq;
                if v == slot {
                    continue;
                }
                if let Some(g) = self.queues[v].steal() {
                    found = Some(g);
                    break;
                }
                STEAL_FAILURES.fetch_add(1, Ordering::Relaxed);
            }
            if found.is_none() {
                // Deterministic sweep to confirm emptiness before leaving.
                for (v, q) in self.queues.iter().enumerate() {
                    if v == slot {
                        continue;
                    }
                    if let Some(g) = q.steal() {
                        found = Some(g);
                        break;
                    }
                }
            }
            match found {
                Some(g) => {
                    STEALS.fetch_add(1, Ordering::Relaxed);
                    self.exec_grain(g);
                }
                None => break,
            }
        }
    }

    fn exec_grain(&self, g: usize) {
        // SAFETY: this participant holds a uniquely claimed grain, so per
        // the [`TaskRef`] invariant the closure is still alive.
        let task = unsafe { &*self.task.0 };
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(g))) {
            let mut slot = lock_recover(&self.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        TASKS_EXECUTED.fetch_add(1, Ordering::Relaxed);
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            let mut done = lock_recover(&self.done);
            *done = true;
            self.done_cv.notify_all();
        }
    }

    fn wait_done(&self) {
        let mut done = lock_recover(&self.done);
        while !*done {
            done = self
                .done_cv
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

/// Chase–Lev-style work-stealing deque over a *pre-filled, immutable*
/// grain buffer: all items exist before any participant starts, so there
/// is no push/grow path and the only race is owner-pop vs. thief-steal on
/// the last item, settled by a CAS on `top`. The buffer stores its block's
/// grains in descending order so the owner pops ascending global indices
/// while thieves take the tail of the block.
///
/// This protocol (take/steal with the last-item CAS) is exhaustively
/// model-checked over small interleavings in `proclus-verify`.
struct Deque {
    buf: Vec<usize>,
    /// Thief end: index of the next stealable item; monotonically grows.
    top: AtomicIsize,
    /// Owner end: one past the last item the owner may pop.
    bottom: AtomicIsize,
}

impl Deque {
    /// A deque holding grains `lo..hi` in descending buffer order.
    fn new_desc(lo: usize, hi: usize) -> Self {
        let buf: Vec<usize> = (lo..hi).rev().collect();
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(buf.len() as isize),
            buf,
        }
    }

    /// Owner pop (called only by the slot's owner).
    fn take(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::SeqCst) - 1;
        self.bottom.store(b, Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t < b {
            // More than one item left: thieves can reach at most `b - 1`,
            // so `buf[b]` is exclusively the owner's.
            return Some(self.buf[b as usize]);
        }
        let won = t == b
            && self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
        self.bottom.store(b + 1, Ordering::SeqCst);
        won.then(|| self.buf[b as usize])
    }

    /// Thief steal (any non-owner participant). Retries internally on a
    /// lost CAS race: the contended item was taken by someone else, but
    /// the queue may still hold more.
    fn steal(&self) -> Option<usize> {
        loop {
            let t = self.top.load(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::SeqCst);
            if t >= b {
                return None;
            }
            let item = self.buf[t as usize];
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some(item);
            }
            STEAL_FAILURES.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::thread::ThreadId;
    use std::time::Duration;

    fn modes() -> [Executor; 4] {
        [
            Executor::Sequential,
            Executor::Parallel { threads: 4 },
            Executor::Parallel { threads: 7 },
            Executor::StaticSplit { threads: 3 },
        ]
    }

    #[test]
    fn grain_align_matches_simd_lanes() {
        assert_eq!(GRAIN_ALIGN, crate::distance_simd::LANES);
    }

    #[test]
    fn grains_tile_the_range_exactly_once() {
        for len in [
            0usize, 1, 3, 7, 511, 2047, 2048, 2049, 4000, 20_000, 1_000_000,
        ] {
            let (grain, grains) = grains_for(len);
            assert!(grain >= 1);
            if len <= SEQ_CROSSOVER {
                assert_eq!(grains, 1, "len {len} must be a single grain");
            } else {
                assert_eq!(grain % GRAIN_ALIGN, 0, "len {len}: grain {grain} unaligned");
                assert!(grains <= MAX_GRAINS + 1, "len {len}: {grains} grains");
                assert!(grain >= MIN_GRAIN, "len {len}: grain {grain} too small");
            }
            // Concatenated grain ranges == 0..len, each index exactly once.
            let mut covered = Vec::new();
            for g in 0..grains {
                let lo = g * grain;
                let hi = (lo + grain).min(len);
                assert!(lo <= hi, "len {len} grain {g}");
                covered.extend(lo..hi);
            }
            assert_eq!(covered, (0..len).collect::<Vec<_>>(), "len {len}");
        }
    }

    #[test]
    fn map_chunks_covers_range_exactly_once() {
        for exec in modes() {
            let sums = exec.map_chunks(
                10_000,
                || 0u64,
                |acc, range| {
                    for i in range {
                        *acc += i as u64;
                    }
                },
            );
            let total: u64 = sums.into_iter().sum();
            assert_eq!(total, 9999 * 10_000 / 2, "{exec:?}");
        }
    }

    #[test]
    fn map_chunks_partials_bitwise_identical_across_modes() {
        // f64 partial sums are decomposition-sensitive, so this pins the
        // central contract: same grains, same partials, in the same order,
        // for every executor mode and thread count.
        let run = |exec: Executor| -> Vec<u64> {
            exec.map_chunks(
                10_000,
                || 0.0f64,
                |acc, range| {
                    for i in range {
                        *acc += (i as f64).sqrt() * 0.1;
                    }
                },
            )
            .into_iter()
            .map(f64::to_bits)
            .collect()
        };
        let base = run(Executor::Sequential);
        assert!(base.len() > 1, "10k elements must decompose into >1 grain");
        for exec in [
            Executor::Parallel { threads: 2 },
            Executor::Parallel { threads: 7 },
            Executor::StaticSplit { threads: 3 },
            Executor::StaticSplit { threads: 16 },
        ] {
            assert_eq!(run(exec), base, "{exec:?}");
        }
    }

    #[test]
    fn map_chunks_handles_len_smaller_than_workers() {
        let exec = Executor::Parallel { threads: 16 };
        let sums = exec.map_chunks(3, || 0usize, |acc, r| *acc += r.len());
        assert_eq!(sums.iter().sum::<usize>(), 3);
    }

    #[test]
    fn map_chunks_empty_range() {
        let exec = Executor::Parallel { threads: 4 };
        let states = exec.map_chunks(0, || 7u32, |_, _| {});
        assert_eq!(states, vec![7]);
    }

    #[test]
    fn for_each_slice_writes_disjointly() {
        for exec in modes() {
            let mut out = vec![0usize; 10_000];
            exec.for_each_slice(&mut out, |off, sub| {
                for (i, v) in sub.iter_mut().enumerate() {
                    *v = off + i;
                }
            });
            assert!(out.iter().enumerate().all(|(i, &v)| v == i), "{exec:?}");
        }
    }

    #[test]
    fn for_each_strips_writes_every_slice_disjointly() {
        for exec in modes() {
            let mut a = vec![0usize; 10_000];
            let mut b = vec![0usize; 10_000];
            {
                let mut outs: Vec<&mut [usize]> = vec![&mut a, &mut b];
                exec.for_each_strips(&mut outs, |off, strips| {
                    for (r, strip) in strips.iter_mut().enumerate() {
                        for (i, v) in strip.iter_mut().enumerate() {
                            *v = (r + 1) * (off + i);
                        }
                    }
                });
            }
            assert!(a.iter().enumerate().all(|(i, &v)| v == i), "{exec:?}");
            assert!(b.iter().enumerate().all(|(i, &v)| v == 2 * i), "{exec:?}");
        }
    }

    #[test]
    fn for_each_strips_handles_len_smaller_than_workers() {
        let exec = Executor::Parallel { threads: 16 };
        let mut a = vec![0u8; 3];
        let mut outs: Vec<&mut [u8]> = vec![&mut a];
        exec.for_each_strips(&mut outs, |_, strips| {
            for strip in strips.iter_mut() {
                strip.iter_mut().for_each(|v| *v += 1);
            }
        });
        assert_eq!(a, vec![1, 1, 1]);
    }

    #[test]
    fn pool_runs_grains_on_multiple_threads() {
        let exec = Executor::Parallel { threads: 4 };
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        exec.map_chunks(
            20_000,
            || (),
            |_, _| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // Sleeping releases the core so parked workers get a
                // chance to wake and claim grains even on small machines.
                std::thread::sleep(Duration::from_millis(1));
            },
        );
        assert!(seen.lock().unwrap().len() >= 2);
    }

    #[test]
    fn steal_under_skew_redistributes_the_stragglers_block() {
        // Grain 0 (owned by the submitter, who pops its block in ascending
        // order) blocks for a long time; the rest of the submitter's block
        // must be stolen and finished by other participants.
        let before = pool_stats();
        let (grain, grains) = grains_for(20_000);
        let w = 2usize.min(grains);
        let first_block = grains.div_ceil(w); // grains owned by slot 0
        let owners: Mutex<Vec<Option<ThreadId>>> = Mutex::new(vec![None; grains]);
        Executor::Parallel { threads: 2 }.map_chunks(
            20_000,
            || (),
            |_, range| {
                let g = range.start / grain;
                owners.lock().unwrap()[g] = Some(std::thread::current().id());
                if g == 0 {
                    std::thread::sleep(Duration::from_millis(100));
                }
            },
        );
        let owners = owners.lock().unwrap();
        let first_block_threads: HashSet<ThreadId> =
            owners[..first_block].iter().map(|t| t.unwrap()).collect();
        assert!(
            first_block_threads.len() >= 2,
            "straggler's block must be finished by thieves: {owners:?}"
        );
        let after = pool_stats();
        assert!(after.steals > before.steals, "no steals recorded");
        assert!(
            after.tasks_executed - before.tasks_executed >= grains as u64,
            "every grain must be counted"
        );
    }

    #[test]
    fn panic_propagates_out_of_a_stolen_grain() {
        // Submitter blocks on grain 0 so the tail of its block — including
        // the poisoned grain — is overwhelmingly likely to be stolen; the
        // payload must surface from map_chunks either way.
        let (grain, grains) = grains_for(20_000);
        let poisoned = grains.div_ceil(2) - 1; // tail of slot 0's block
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Executor::Parallel { threads: 2 }.map_chunks(
                20_000,
                || (),
                |_, range| {
                    let g = range.start / grain;
                    if g == 0 {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    if g == poisoned {
                        panic!("poisoned grain {g}");
                    }
                },
            );
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("poisoned grain"), "payload lost: {msg:?}");
    }

    #[test]
    fn nested_submission_runs_inline_without_deadlock() {
        let inner_total = AtomicUsize::new(0);
        let outer = Executor::Parallel { threads: 4 };
        outer.map_chunks(
            20_000,
            || 0usize,
            |acc, range| {
                *acc += range.len();
                // A nested fork from inside a grain body must run inline
                // (the submission lock is held by our own phase).
                let parts = Executor::Parallel { threads: 4 }.map_chunks(
                    4096,
                    || 0usize,
                    |a, r| *a += r.len(),
                );
                inner_total.fetch_add(parts.iter().sum::<usize>(), Ordering::Relaxed);
            },
        );
        let (_, grains) = grains_for(20_000);
        assert_eq!(inner_total.load(Ordering::Relaxed), grains * 4096);
    }

    #[test]
    fn pool_thread_count_stays_within_cores() {
        // Force the pool into existence, then check the shared-pool cap.
        Executor::Parallel { threads: 64 }.for_each_slice(&mut vec![0u8; 20_000], |_, _| {});
        let spawned = pool_thread_count();
        assert!(spawned >= 1);
        assert!(
            spawned < pool_cap(),
            "pool spawned {spawned} workers, cap {}",
            pool_cap()
        );
    }

    #[test]
    fn executor_thread_counts() {
        assert_eq!(Executor::Sequential.threads(), 1);
        assert_eq!(Executor::Parallel { threads: 0 }.threads(), 1);
        assert_eq!(Executor::StaticSplit { threads: 0 }.threads(), 1);
        assert_eq!(Executor::StaticSplit { threads: 5 }.threads(), 5);
        assert!(Executor::all_cores().threads() >= 1);
    }

    #[test]
    fn proclus_threads_env_override() {
        // One test covers every case so set/remove never races another
        // PROCLUS_THREADS test in this process.
        std::env::set_var("PROCLUS_THREADS", "3");
        assert_eq!(
            Executor::try_all_cores(),
            Ok(Executor::Parallel { threads: 3 })
        );
        assert_eq!(Executor::all_cores().threads(), 3);

        std::env::set_var("PROCLUS_THREADS", "zesty");
        let err = Executor::try_all_cores().expect_err("garbage must be a typed error");
        assert!(matches!(err, ProclusError::InvalidParams { .. }));
        assert!(err.to_string().contains("PROCLUS_THREADS"));
        // all_cores falls back to the detected core count on garbage.
        assert_eq!(Executor::all_cores().threads(), detected_cores());

        std::env::set_var("PROCLUS_THREADS", "0");
        assert!(
            Executor::try_all_cores().is_err(),
            "zero threads is invalid"
        );

        std::env::remove_var("PROCLUS_THREADS");
        assert_eq!(
            Executor::try_all_cores(),
            Ok(Executor::Parallel {
                threads: detected_cores()
            })
        );
    }

    #[test]
    fn deque_take_pops_ascending_and_drains() {
        let q = Deque::new_desc(3, 9);
        let got: Vec<usize> = std::iter::from_fn(|| q.take()).collect();
        assert_eq!(got, vec![3, 4, 5, 6, 7, 8]);
        assert_eq!(q.take(), None);
        assert_eq!(q.steal(), None);
    }

    #[test]
    fn deque_steal_takes_the_tail() {
        let q = Deque::new_desc(0, 4);
        assert_eq!(q.steal(), Some(3));
        assert_eq!(q.take(), Some(0));
        assert_eq!(q.steal(), Some(2));
        assert_eq!(q.take(), Some(1));
        assert_eq!(q.take(), None);
        assert_eq!(q.steal(), None);
    }

    #[test]
    fn deque_concurrent_owner_and_thieves_claim_each_item_once() {
        // Hammer the last-item CAS race from std threads (allowed here:
        // this *is* par.rs). Every grain must be claimed exactly once.
        for _ in 0..50 {
            let q = Deque::new_desc(0, 64);
            let claimed = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    scope.spawn(|| {
                        let mut got = Vec::new();
                        while let Some(g) = q.steal() {
                            got.push(g);
                        }
                        claimed.lock().unwrap().extend(got);
                    });
                }
                let mut got = Vec::new();
                while let Some(g) = q.take() {
                    got.push(g);
                }
                claimed.lock().unwrap().extend(got);
            });
            let mut all = claimed.into_inner().unwrap();
            all.sort_unstable();
            assert_eq!(all, (0..64).collect::<Vec<_>>());
        }
    }
}
