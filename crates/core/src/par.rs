//! Fork–join parallelism substrate for the multi-core CPU variants.
//!
//! The paper parallelizes PROCLUS's hot loops on the CPU with OpenMP
//! (`#pragma omp parallel for` with per-thread partials followed by a
//! reduction). This module provides the same structure on crossbeam scoped
//! threads: [`Executor`] carries the degree of parallelism, and the two
//! primitives split an index range (or an output slice) into contiguous
//! chunks, one per worker.

use std::ops::Range;

/// Where loop bodies execute: inline, or forked across `threads` workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// Run loop bodies inline on the calling thread.
    Sequential,
    /// Fork across this many OS threads (clamped to ≥ 1).
    Parallel {
        /// Number of worker threads.
        threads: usize,
    },
}

impl Executor {
    /// An executor using all available cores.
    pub fn all_cores() -> Self {
        Executor::Parallel {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// The worker count (1 for [`Executor::Sequential`]).
    pub fn threads(&self) -> usize {
        match *self {
            Executor::Sequential => 1,
            Executor::Parallel { threads } => threads.max(1),
        }
    }

    /// Splits `0..len` into one contiguous chunk per worker, runs
    /// `body(chunk)` on each in parallel, and returns the per-worker states
    /// (in chunk order) for the caller to reduce.
    ///
    /// `make` builds each worker's private accumulator — the OpenMP
    /// "per-thread partial result" pattern the paper relies on to avoid
    /// atomic contention.
    pub fn map_chunks<S, MF, BF>(&self, len: usize, make: MF, body: BF) -> Vec<S>
    where
        S: Send,
        MF: Fn() -> S + Sync,
        BF: Fn(&mut S, Range<usize>) + Sync,
    {
        let workers = self.threads().min(len.max(1));
        if workers <= 1 || len == 0 {
            let mut s = make();
            body(&mut s, 0..len);
            return vec![s];
        }
        let chunk = len.div_ceil(workers);
        let mut out: Vec<Option<S>> = (0..workers).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            for (w, slot) in out.iter_mut().enumerate() {
                let make = &make;
                let body = &body;
                scope.spawn(move |_| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(len);
                    let mut s = make();
                    body(&mut s, lo..hi);
                    *slot = Some(s);
                });
            }
        })
        .expect("parallel worker panicked");
        out.into_iter().map(|s| s.expect("worker state")).collect()
    }

    /// Splits `out` into one contiguous sub-slice per worker and runs
    /// `body(global_offset, sub_slice)` on each in parallel. Used for
    /// loops whose only side effect is writing disjoint output elements
    /// (e.g. the label array in AssignPoints).
    pub fn for_each_slice<T, BF>(&self, out: &mut [T], body: BF)
    where
        T: Send,
        BF: Fn(usize, &mut [T]) + Sync,
    {
        let len = out.len();
        let workers = self.threads().min(len.max(1));
        if workers <= 1 || len == 0 {
            body(0, out);
            return;
        }
        let chunk = len.div_ceil(workers);
        crossbeam::thread::scope(|scope| {
            for (w, sub) in out.chunks_mut(chunk).enumerate() {
                let body = &body;
                scope.spawn(move |_| body(w * chunk, sub));
            }
        })
        .expect("parallel worker panicked");
    }

    /// Splits *several* equal-length output slices at the same chunk
    /// boundaries and runs `body(global_offset, strips)` on each worker,
    /// where `strips[r]` is slice `r`'s sub-range for that worker. This is
    /// the batched form of [`Executor::for_each_slice`]: the cache-blocked
    /// `Dist` computation writes one column strip of *every* fresh medoid
    /// row per worker, so each data tile is read once and reused across all
    /// rows instead of once per row.
    pub fn for_each_strips<T, BF>(&self, outs: &mut [&mut [T]], body: BF)
    where
        T: Send,
        BF: Fn(usize, &mut [&mut [T]]) + Sync,
    {
        let Some(len) = outs.first().map(|o| o.len()) else {
            return;
        };
        debug_assert!(outs.iter().all(|o| o.len() == len), "ragged strips");
        let workers = self.threads().min(len.max(1));
        if workers <= 1 || len == 0 {
            body(0, outs);
            return;
        }
        let chunk = len.div_ceil(workers);
        let mut parts: Vec<Vec<&mut [T]>> = (0..workers).map(|_| Vec::new()).collect();
        for out in outs.iter_mut() {
            for (w, sub) in out.chunks_mut(chunk).enumerate() {
                parts[w].push(sub);
            }
        }
        crossbeam::thread::scope(|scope| {
            for (w, mut strips) in parts.into_iter().enumerate() {
                if strips.is_empty() {
                    continue;
                }
                let body = &body;
                scope.spawn(move |_| body(w * chunk, &mut strips));
            }
        })
        .expect("parallel worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_chunks_covers_range_exactly_once() {
        for exec in [Executor::Sequential, Executor::Parallel { threads: 4 }] {
            let sums = exec.map_chunks(
                1000,
                || 0u64,
                |acc, range| {
                    for i in range {
                        *acc += i as u64;
                    }
                },
            );
            let total: u64 = sums.into_iter().sum();
            assert_eq!(total, 999 * 1000 / 2);
        }
    }

    #[test]
    fn map_chunks_handles_len_smaller_than_workers() {
        let exec = Executor::Parallel { threads: 16 };
        let sums = exec.map_chunks(3, || 0usize, |acc, r| *acc += r.len());
        assert_eq!(sums.iter().sum::<usize>(), 3);
    }

    #[test]
    fn map_chunks_empty_range() {
        let exec = Executor::Parallel { threads: 4 };
        let states = exec.map_chunks(0, || 7u32, |_, _| {});
        assert_eq!(states, vec![7]);
    }

    #[test]
    fn for_each_slice_writes_disjointly() {
        let exec = Executor::Parallel { threads: 3 };
        let mut out = vec![0usize; 100];
        exec.for_each_slice(&mut out, |off, sub| {
            for (i, v) in sub.iter_mut().enumerate() {
                *v = off + i;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn for_each_strips_writes_every_slice_disjointly() {
        for exec in [Executor::Sequential, Executor::Parallel { threads: 3 }] {
            let mut a = vec![0usize; 100];
            let mut b = vec![0usize; 100];
            {
                let mut outs: Vec<&mut [usize]> = vec![&mut a, &mut b];
                exec.for_each_strips(&mut outs, |off, strips| {
                    for (r, strip) in strips.iter_mut().enumerate() {
                        for (i, v) in strip.iter_mut().enumerate() {
                            *v = (r + 1) * (off + i);
                        }
                    }
                });
            }
            assert!(a.iter().enumerate().all(|(i, &v)| v == i));
            assert!(b.iter().enumerate().all(|(i, &v)| v == 2 * i));
        }
    }

    #[test]
    fn for_each_strips_handles_len_smaller_than_workers() {
        let exec = Executor::Parallel { threads: 16 };
        let mut a = vec![0u8; 3];
        let mut outs: Vec<&mut [u8]> = vec![&mut a];
        exec.for_each_strips(&mut outs, |_, strips| {
            for strip in strips.iter_mut() {
                strip.iter_mut().for_each(|v| *v += 1);
            }
        });
        assert_eq!(a, vec![1, 1, 1]);
    }

    #[test]
    fn parallel_actually_uses_multiple_threads() {
        let exec = Executor::Parallel { threads: 4 };
        let distinct = AtomicUsize::new(0);
        exec.map_chunks(
            4000,
            || false,
            |seen, _| {
                if !*seen {
                    *seen = true;
                    distinct.fetch_add(1, Ordering::Relaxed);
                }
            },
        );
        assert!(distinct.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn executor_thread_counts() {
        assert_eq!(Executor::Sequential.threads(), 1);
        assert_eq!(Executor::Parallel { threads: 0 }.threads(), 1);
        assert!(Executor::all_cores().threads() >= 1);
    }
}
