//! CI helper: validates telemetry JSON / chrome-trace files against the
//! schema rules in `proclus_telemetry::schema`.
//!
//! Usage:
//!   telemetry_validate <report.json> [more.json ...]
//!   telemetry_validate --chrome-trace <trace.json> [more.json ...]
//!
//! Exits 0 when every file validates, 1 otherwise (one diagnostic line per
//! file on stderr).

use std::process::ExitCode;

use proclus_telemetry::schema;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (chrome, files): (bool, &[String]) = match args.first().map(String::as_str) {
        Some("--chrome-trace") => (true, &args[1..]),
        _ => (false, &args[..]),
    };
    if files.is_empty() {
        eprintln!("usage: telemetry_validate [--chrome-trace] <file.json> ...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in files {
        let result = std::fs::read_to_string(path)
            .map_err(|e| format!("read failed: {e}"))
            .and_then(|text| {
                if chrome {
                    schema::validate_chrome_trace_str(&text)
                } else {
                    schema::validate_any_str(&text)
                }
            });
        match result {
            Ok(()) => println!("ok: {path}"),
            Err(e) => {
                eprintln!("FAIL: {path}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
