//! # proclus-telemetry — phase-level telemetry for the PROCLUS family
//!
//! The paper's whole contribution is a per-phase cost story: FindDimensions
//! and AssignPoints dominate the baseline, and the `Dist`/`H` reuse of
//! FAST-PROCLUS (Theorems 3.1/3.2) moves work out of ComputeL. This crate
//! is the measuring instrument for that story: lightweight hierarchical
//! **spans** (run → iteration → phase → kernel) with wall-clock time,
//! invocation counts, and **algorithm counters** (distances computed,
//! `DistFound` hits/misses, `ΔL` sizes, points reassigned, medoids
//! replaced), recorded through a zero-cost-when-disabled [`Recorder`]
//! trait.
//!
//! * Algorithm code records against `&dyn Recorder`. The default
//!   [`NullRecorder`] compiles every call down to a no-op (its `enabled()`
//!   returns `false`, so call sites can skip even the bookkeeping needed to
//!   compute a counter value).
//! * [`Telemetry`] is the collecting recorder: it builds a span tree and,
//!   once the run finishes, yields a [`TelemetryReport`].
//! * [`TelemetryReport`] exports structured JSON (validated by
//!   [`schema::validate_report`]), Chrome-trace JSON (loadable in
//!   `about:tracing` / Perfetto), a human-readable phase-time table, and a
//!   deterministic tree rendering used by the golden-file tests.
//!
//! No external dependencies: JSON is emitted and parsed by the tiny
//! hand-rolled [`json`] module, mirroring the repo's no-serde policy.
//!
//! ## Example
//!
//! ```
//! use proclus_telemetry::{counters, span, Recorder, Telemetry};
//!
//! let tel = Telemetry::new();
//! {
//!     let _run = span(&tel, "run");
//!     let _it = span(&tel, "iteration");
//!     tel.add(counters::DISTANCES_COMPUTED, 42);
//! }
//! let report = tel.finish();
//! assert_eq!(report.total(counters::DISTANCES_COMPUTED), 42);
//! assert!(report.to_chrome_trace().starts_with('['));
//! proclus_telemetry::schema::validate_report_str(&report.to_json()).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod collect;
pub mod hist;
pub mod json;
mod recorder;
mod report;
pub mod schema;

pub use collect::Telemetry;
pub use hist::Histogram;
pub use recorder::{span, NullRecorder, Recorder, SpanGuard, SpanId};
pub use report::{chrome_trace_combined, runs_json, PhaseRow, SpanNode, TelemetryReport};

/// Names of the algorithm counters recorded by the PROCLUS crates. Keeping
/// them here (rather than as ad-hoc strings at each call site) is what makes
/// the JSON schema and the golden tests stable.
pub mod counters {
    /// Full-dimensional Euclidean point↔medoid distance evaluations
    /// (greedy selection, baseline ComputeL, `Dist` row fills). This is the
    /// quantity Theorem 3.1 reduces, so it is the headline number for
    /// FAST vs baseline comparisons.
    pub const DISTANCES_COMPUTED: &str = "distances_computed";
    /// Manhattan segmental distance evaluations (AssignPoints,
    /// RemoveOutliers). Counted as launched work; short-circuit exits are
    /// not subtracted.
    pub const SEGMENTAL_DISTANCES: &str = "segmental_distances";
    /// `DistFound` hits: a current medoid whose `Dist` row was already
    /// cached (FAST) or whose slot survived unchanged (FAST*).
    pub const DIST_CACHE_HITS: &str = "dist_cache_hits";
    /// `DistFound` misses: a `Dist` row had to be computed from scratch.
    pub const DIST_CACHE_MISSES: &str = "dist_cache_misses";
    /// Points scanned by the incremental `ΔL_i` update (Theorem 3.2), i.e.
    /// `Σ_i |ΔL_i|` over all slots and iterations.
    pub const DELTA_L_POINTS: &str = "delta_l_points";
    /// Points whose cluster label changed relative to the previous
    /// iteration's assignment (the first iteration counts every point).
    pub const POINTS_REASSIGNED: &str = "points_reassigned";
    /// Bad-medoid replacements performed across all iterations.
    pub const MEDOIDS_REPLACED: &str = "medoids_replaced";
    /// Iterations of the medoid search (refinement not included).
    pub const ITERATIONS: &str = "iterations";
    /// Device kernel launches (GPU backends; bridged from gpu-sim).
    pub const KERNEL_LAUNCHES: &str = "kernel_launches";

    // --- Service counters (the `proclus-serve` layer) ---

    /// Jobs accepted into the service queue.
    pub const JOBS_ADMITTED: &str = "jobs_admitted";
    /// Jobs rejected at admission (queue full or invalid request).
    pub const JOBS_REJECTED: &str = "jobs_rejected";
    /// Jobs that executed inside a coalesced multi-parameter batch of
    /// width ≥ 2 (shared sample / `Dist`/`H` / `M`, §3.1).
    pub const JOBS_BATCHED: &str = "jobs_batched";
    /// Jobs that finished with a clustering.
    pub const JOBS_COMPLETED: &str = "jobs_completed";
    /// Jobs that failed (invalid parameters, device error, worker panic).
    pub const JOBS_FAILED: &str = "jobs_failed";
    /// Jobs cancelled by the client or by their deadline.
    pub const JOBS_CANCELLED: &str = "jobs_cancelled";
    /// Batches executed (a solo job counts as a batch of width 1). Divide
    /// [`BATCH_WIDTH`] by this for the mean coalescing width.
    pub const BATCHES_EXECUTED: &str = "batches_executed";
    /// Sum of executed batch widths (jobs per grid run).
    pub const BATCH_WIDTH: &str = "batch_width";
    /// Dataset registry hits (dataset served from the LRU cache).
    pub const DATASET_CACHE_HITS: &str = "dataset_cache_hits";
    /// Dataset registry misses (dataset loaded and hashed from its source).
    pub const DATASET_CACHE_MISSES: &str = "dataset_cache_misses";

    // --- Work-stealing pool counters (the `par` substrate) ---
    //
    // Recorded as before/after deltas of the process-wide pool totals, so
    // concurrent runs sharing the pool each see a superset of their own
    // activity. Counter keys are free-form in the schema (any non-negative
    // integer value), so readers of older reports stay compatible.

    /// Grains executed by work-stealing pool phases during the run.
    pub const POOL_TASKS: &str = "pool_tasks";
    /// Grains successfully stolen from another participant's deque.
    pub const POOL_STEALS: &str = "pool_steals";
    /// Steal attempts that lost a race or found the victim's deque empty.
    pub const POOL_STEAL_FAILURES: &str = "pool_steal_failures";
    /// Times a pool worker parked waiting for a phase.
    pub const POOL_PARKS: &str = "pool_parks";
    /// Times a parked pool worker was woken by a new phase.
    pub const POOL_UNPARKS: &str = "pool_unparks";
}

/// Names of span attributes (float-valued annotations).
pub mod attrs {
    /// Simulated device time attributed to a span, in microseconds
    /// (GPU backends; from the gpu-sim performance model).
    pub const SIM_US: &str = "sim_us";
    /// Modeled kernel time for a bridged `kernel:*` span, in microseconds.
    pub const KERNEL_TIME_US: &str = "kernel_time_us";
}
