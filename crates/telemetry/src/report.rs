//! The finished artefact of a recorded run: span tree, totals and the
//! exporters (structured JSON, chrome-trace, phase table, golden tree).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::attrs;
use crate::json::{escape, fmt_f64};

/// One node of the finished span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name (`"run"`, `"iteration"`, `"assign_points"`,
    /// `"kernel:assign"`, …).
    pub name: String,
    /// Start offset from the collector's epoch, microseconds.
    pub start_us: f64,
    /// Wall-clock duration, microseconds (0 for instantaneous `emit` spans).
    pub dur_us: f64,
    /// Algorithm counters recorded while this span was innermost.
    pub counters: BTreeMap<String, u64>,
    /// Float annotations (e.g. simulated device time).
    pub attrs: BTreeMap<String, f64>,
    /// Nested spans, in start order.
    pub children: Vec<SpanNode>,
}

/// One row of the human-readable phase table: all spans sharing a name,
/// aggregated.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed wall-clock time, milliseconds.
    pub total_ms: f64,
    /// Summed simulated device time (the `sim_us` attribute), microseconds.
    pub sim_us: f64,
}

/// Everything a recorded run left behind. Produced by
/// [`Telemetry::finish`](crate::Telemetry::finish).
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// Run metadata (`algo`, `backend`, `seed`, `n`, `d`, …).
    pub meta: BTreeMap<String, String>,
    /// Run-wide counter totals.
    pub totals: BTreeMap<String, u64>,
    /// Root spans (normally exactly one `run` span).
    pub spans: Vec<SpanNode>,
}

impl TelemetryReport {
    /// Run-wide total for counter `name` (0 if never recorded).
    pub fn total(&self, name: &str) -> u64 {
        self.totals.get(name).copied().unwrap_or(0)
    }

    /// Finds the first span named `name` anywhere in the tree
    /// (depth-first, pre-order).
    pub fn find_span(&self, name: &str) -> Option<&SpanNode> {
        fn walk<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
            for n in nodes {
                if n.name == name {
                    return Some(n);
                }
                if let Some(hit) = walk(&n.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        walk(&self.spans, name)
    }

    /// Collects the distinct span names present in the tree, sorted.
    pub fn span_names(&self) -> Vec<String> {
        fn walk(nodes: &[SpanNode], out: &mut std::collections::BTreeSet<String>) {
            for n in nodes {
                out.insert(n.name.clone());
                walk(&n.children, out);
            }
        }
        let mut set = std::collections::BTreeSet::new();
        walk(&self.spans, &mut set);
        set.into_iter().collect()
    }

    /// Structured JSON export:
    /// `{"version":1,"meta":{..},"totals":{..},"spans":[..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"version\":1,\"meta\":{");
        let mut first = true;
        for (k, v) in &self.meta {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
        }
        out.push_str("},\"totals\":{");
        first = true;
        for (k, v) in &self.totals {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push_str("},\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_span(&mut out, s);
        }
        out.push_str("]}");
        out
    }

    /// Chrome-trace export: a JSON array of complete (`"ph":"X"`) events,
    /// loadable in `about:tracing` / Perfetto. `pid` 0, one thread.
    pub fn to_chrome_trace(&self) -> String {
        self.chrome_trace_with_pid(0, &self.trace_label())
    }

    fn trace_label(&self) -> String {
        match (self.meta.get("algo"), self.meta.get("backend")) {
            (Some(a), Some(b)) => format!("{a}/{b}"),
            (Some(a), None) => a.clone(),
            _ => "run".to_string(),
        }
    }

    fn chrome_trace_with_pid(&self, pid: u32, label: &str) -> String {
        let mut out = String::from("[");
        // Process name metadata event so about:tracing labels the track.
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(label)
        );
        let mut first = false;
        fn walk(out: &mut String, first: &mut bool, pid: u32, node: &SpanNode) {
            if !*first {
                out.push(',');
            }
            *first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{pid},\"tid\":0,\"args\":{{",
                escape(&node.name),
                fmt_f64(node.start_us),
                fmt_f64(node.dur_us.max(0.0)),
            );
            let mut afirst = true;
            for (k, v) in &node.counters {
                if !afirst {
                    out.push(',');
                }
                afirst = false;
                let _ = write!(out, "\"{}\":{}", escape(k), v);
            }
            for (k, v) in &node.attrs {
                if !afirst {
                    out.push(',');
                }
                afirst = false;
                let _ = write!(out, "\"{}\":{}", escape(k), fmt_f64(*v));
            }
            out.push_str("}}");
            for c in &node.children {
                walk(out, first, pid, c);
            }
        }
        for s in &self.spans {
            walk(&mut out, &mut first, pid, s);
        }
        out.push(']');
        out
    }

    /// Aggregates the tree into per-name rows, sorted by total time
    /// (descending) then name.
    pub fn phase_table(&self) -> Vec<PhaseRow> {
        let mut acc: BTreeMap<String, (u64, f64, f64)> = BTreeMap::new();
        fn walk(nodes: &[SpanNode], acc: &mut BTreeMap<String, (u64, f64, f64)>) {
            for n in nodes {
                let e = acc.entry(n.name.clone()).or_insert((0, 0.0, 0.0));
                e.0 += 1;
                e.1 += n.dur_us / 1000.0;
                e.2 += n.attrs.get(attrs::SIM_US).copied().unwrap_or(0.0)
                    + n.attrs.get(attrs::KERNEL_TIME_US).copied().unwrap_or(0.0);
                walk(&n.children, acc);
            }
        }
        walk(&self.spans, &mut acc);
        let mut rows: Vec<PhaseRow> = acc
            .into_iter()
            .map(|(name, (count, total_ms, sim_us))| PhaseRow {
                name,
                count,
                total_ms,
                sim_us,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.total_ms
                .partial_cmp(&a.total_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        rows
    }

    /// Deterministic rendering for golden-file tests: the span tree as
    /// indented `name` lines with sorted `counter=value` pairs, no timings.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        fn walk(out: &mut String, node: &SpanNode, depth: usize) {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str(&node.name);
            for (k, v) in &node.counters {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
            for c in &node.children {
                walk(out, c, depth + 1);
            }
        }
        for s in &self.spans {
            walk(&mut out, s, 0);
        }
        out
    }
}

fn write_span(out: &mut String, node: &SpanNode) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"counters\":{{",
        escape(&node.name),
        fmt_f64(node.start_us),
        fmt_f64(node.dur_us.max(0.0)),
    );
    let mut first = true;
    for (k, v) in &node.counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", escape(k), v);
    }
    out.push_str("},\"attrs\":{");
    first = true;
    for (k, v) in &node.attrs {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", escape(k), fmt_f64(*v));
    }
    out.push_str("},\"children\":[");
    for (i, c) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_span(out, c);
    }
    out.push_str("]}");
}

/// Serializes several reports as the multi-run document the CLI and bench
/// harness write: `{"version":1,"runs":[<report>..]}`.
pub fn runs_json(reports: &[TelemetryReport]) -> String {
    let mut out = String::from("{\"version\":1,\"runs\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.to_json());
    }
    out.push_str("]}");
    out
}

/// Merges several reports into one chrome-trace document, one `pid` (track)
/// per run — used when the CLI or bench harness records a sweep.
pub fn chrome_trace_combined(reports: &[TelemetryReport]) -> String {
    let mut out = String::from("[");
    for (i, r) in reports.iter().enumerate() {
        let inner = r.chrome_trace_with_pid(i as u32, &r.trace_label());
        // Strip the surrounding brackets and splice.
        let body = &inner[1..inner.len() - 1];
        if i > 0 && !body.is_empty() {
            out.push(',');
        }
        out.push_str(body);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> TelemetryReport {
        let mut meta = BTreeMap::new();
        meta.insert("algo".to_string(), "fast".to_string());
        meta.insert("backend".to_string(), "cpu".to_string());
        let mut totals = BTreeMap::new();
        totals.insert("distances_computed".to_string(), 12);
        let mut counters = BTreeMap::new();
        counters.insert("distances_computed".to_string(), 12u64);
        let mut sattrs = BTreeMap::new();
        sattrs.insert("sim_us".to_string(), 4.5);
        TelemetryReport {
            meta,
            totals,
            spans: vec![SpanNode {
                name: "run".to_string(),
                start_us: 0.0,
                dur_us: 100.0,
                counters: BTreeMap::new(),
                attrs: BTreeMap::new(),
                children: vec![SpanNode {
                    name: "compute_l".to_string(),
                    start_us: 10.0,
                    dur_us: 50.0,
                    counters,
                    attrs: sattrs,
                    children: vec![],
                }],
            }],
        }
    }

    #[test]
    fn json_round_trips_through_parser() {
        let r = sample();
        let v = json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("version").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            v.get("meta").unwrap().get("algo").unwrap().as_str(),
            Some("fast")
        );
        assert_eq!(
            v.get("totals")
                .unwrap()
                .get("distances_computed")
                .unwrap()
                .as_f64(),
            Some(12.0)
        );
        let spans = v.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("run"));
        let child = &spans[0].get("children").unwrap().as_array().unwrap()[0];
        assert_eq!(child.get("name").unwrap().as_str(), Some("compute_l"));
        assert_eq!(
            child.get("attrs").unwrap().get("sim_us").unwrap().as_f64(),
            Some(4.5)
        );
    }

    #[test]
    fn chrome_trace_is_valid_json_with_x_events() {
        let trace = sample().to_chrome_trace();
        let v = json::parse(&trace).unwrap();
        let events = v.as_array().unwrap();
        // Metadata event + 2 spans.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("run"));
        assert_eq!(
            events[2]
                .get("args")
                .unwrap()
                .get("distances_computed")
                .unwrap()
                .as_f64(),
            Some(12.0)
        );
    }

    #[test]
    fn runs_json_validates_as_a_multi_run_document() {
        let doc = runs_json(&[sample(), sample()]);
        crate::schema::validate_any_str(&doc).unwrap();
        let v = json::parse(&doc).unwrap();
        assert_eq!(v.get("runs").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn combined_trace_gives_each_run_its_own_pid() {
        let combined = chrome_trace_combined(&[sample(), sample()]);
        let v = json::parse(&combined).unwrap();
        let events = v.as_array().unwrap();
        assert_eq!(events.len(), 6);
        let pids: Vec<f64> = events
            .iter()
            .map(|e| e.get("pid").unwrap().as_f64().unwrap())
            .collect();
        assert!(pids.contains(&0.0) && pids.contains(&1.0));
    }

    #[test]
    fn phase_table_sorted_by_time() {
        let rows = sample().phase_table();
        assert_eq!(rows[0].name, "run");
        assert_eq!(rows[1].name, "compute_l");
        assert_eq!(rows[1].count, 1);
        assert!((rows[1].total_ms - 0.05).abs() < 1e-9);
        assert!((rows[1].sim_us - 4.5).abs() < 1e-9);
    }

    #[test]
    fn render_tree_is_time_free() {
        let tree = sample().render_tree();
        assert_eq!(tree, "run\n  compute_l distances_computed=12\n");
    }

    #[test]
    fn find_span_and_names() {
        let r = sample();
        assert!(r.find_span("compute_l").is_some());
        assert!(r.find_span("missing").is_none());
        assert_eq!(r.span_names(), vec!["compute_l", "run"]);
    }
}
