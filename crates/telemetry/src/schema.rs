//! Structural validation of telemetry JSON against the checked-in schema
//! (`schema/telemetry.schema.json` at the repo root mirrors these rules for
//! human readers and external tooling; this module is the executable
//! version CI actually runs).

use crate::json::{self, Value};

/// Schema versions this validator understands. Version 2 added the
/// streaming span names (`stream.*`) and the span-name charset rule;
/// version-1 documents remain valid version-2 documents, so writers may
/// stay at 1 until they emit something only 2 describes.
pub const SUPPORTED_VERSIONS: [f64; 2] = [1.0, 2.0];

fn check_version(
    obj: &std::collections::BTreeMap<String, Value>,
    what: &str,
) -> Result<(), String> {
    match obj.get("version").and_then(Value::as_f64) {
        Some(v) if SUPPORTED_VERSIONS.contains(&v) => Ok(()),
        Some(other) => Err(format!("{what}: unsupported version {other}")),
        None => Err(format!("{what}: missing numeric 'version'")),
    }
}

/// Validates a single-run report document
/// (`{"version":1|2,"meta":{..},"totals":{..},"spans":[..]}`).
pub fn validate_report(v: &Value) -> Result<(), String> {
    let obj = v.as_object().ok_or("report: expected object")?;
    check_version(obj, "report")?;
    let meta = obj
        .get("meta")
        .and_then(Value::as_object)
        .ok_or("report: missing object 'meta'")?;
    for (k, val) in meta {
        if val.as_str().is_none() {
            return Err(format!("report: meta['{k}'] must be a string"));
        }
    }
    let totals = obj
        .get("totals")
        .and_then(Value::as_object)
        .ok_or("report: missing object 'totals'")?;
    for (k, val) in totals {
        check_counter(k, val)?;
    }
    let spans = obj
        .get("spans")
        .and_then(Value::as_array)
        .ok_or("report: missing array 'spans'")?;
    if spans.is_empty() {
        return Err("report: 'spans' must not be empty".to_string());
    }
    for s in spans {
        validate_span(s)?;
    }
    Ok(())
}

/// Validates a multi-run document (`{"version":1|2,"runs":[<report>..]}`),
/// the shape the CLI and bench harness write.
pub fn validate_runs(v: &Value) -> Result<(), String> {
    let obj = v.as_object().ok_or("runs: expected object")?;
    check_version(obj, "runs")?;
    let runs = obj
        .get("runs")
        .and_then(Value::as_array)
        .ok_or("runs: missing array 'runs'")?;
    if runs.is_empty() {
        return Err("runs: 'runs' must not be empty".to_string());
    }
    for (i, r) in runs.iter().enumerate() {
        validate_report(r).map_err(|e| format!("runs[{i}]: {e}"))?;
    }
    Ok(())
}

/// Parses `input` and validates it as a single-run report.
pub fn validate_report_str(input: &str) -> Result<(), String> {
    validate_report(&json::parse(input)?)
}

/// Parses `input` and validates it as either a single-run report or a
/// multi-run `{"runs":[..]}` document (CI uses this on CLI output).
pub fn validate_any_str(input: &str) -> Result<(), String> {
    let v = json::parse(input)?;
    if v.get("runs").is_some() {
        validate_runs(&v)
    } else {
        validate_report(&v)
    }
}

/// Parses `input` and validates it as a chrome-trace array of events.
pub fn validate_chrome_trace_str(input: &str) -> Result<(), String> {
    let v = json::parse(input)?;
    let events = v.as_array().ok_or("trace: expected array")?;
    for (i, e) in events.iter().enumerate() {
        let obj = e
            .as_object()
            .ok_or_else(|| format!("trace[{i}]: expected object"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("trace[{i}]: missing string 'ph'"))?;
        if obj.get("name").and_then(Value::as_str).is_none() {
            return Err(format!("trace[{i}]: missing string 'name'"));
        }
        for key in ["pid", "tid"] {
            if obj.get(key).and_then(Value::as_f64).is_none() {
                return Err(format!("trace[{i}]: missing numeric '{key}'"));
            }
        }
        if ph == "X" {
            for key in ["ts", "dur"] {
                if obj.get(key).and_then(Value::as_f64).is_none() {
                    return Err(format!("trace[{i}]: missing numeric '{key}'"));
                }
            }
        }
    }
    Ok(())
}

fn check_counter(key: &str, val: &Value) -> Result<(), String> {
    match val.as_f64() {
        Some(n) if n >= 0.0 && n == n.trunc() => Ok(()),
        _ => Err(format!("counter '{key}' must be a non-negative integer")),
    }
}

fn validate_span(v: &Value) -> Result<(), String> {
    let obj = v.as_object().ok_or("span: expected object")?;
    let name = obj
        .get("name")
        .and_then(Value::as_str)
        .ok_or("span: missing string 'name'")?;
    if name.is_empty() {
        return Err("span: 'name' must not be empty".to_string());
    }
    // Span names are dotted identifiers (e.g. `iteration`, `stream.assign`).
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':' | '-'))
    {
        return Err(format!(
            "span: name '{name}' has characters outside [a-zA-Z0-9_.:-]"
        ));
    }
    for key in ["start_us", "dur_us"] {
        match obj.get(key).and_then(Value::as_f64) {
            Some(n) if n >= 0.0 => {}
            _ => {
                return Err(format!(
                    "span '{name}': '{key}' must be a non-negative number"
                ))
            }
        }
    }
    let counters = obj
        .get("counters")
        .and_then(Value::as_object)
        .ok_or_else(|| format!("span '{name}': missing object 'counters'"))?;
    for (k, val) in counters {
        check_counter(k, val).map_err(|e| format!("span '{name}': {e}"))?;
    }
    let attrs = obj
        .get("attrs")
        .and_then(Value::as_object)
        .ok_or_else(|| format!("span '{name}': missing object 'attrs'"))?;
    for (k, val) in attrs {
        if val.as_f64().is_none() {
            return Err(format!("span '{name}': attr '{k}' must be a number"));
        }
    }
    let children = obj
        .get("children")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("span '{name}': missing array 'children'"))?;
    for c in children {
        validate_span(c)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"version":1,"meta":{"algo":"fast"},"totals":{"iterations":3},
        "spans":[{"name":"run","start_us":0,"dur_us":10,"counters":{},
        "attrs":{},"children":[{"name":"iteration","start_us":1,"dur_us":5,
        "counters":{"distances_computed":9},"attrs":{"sim_us":2.5},"children":[]}]}]}"#;

    #[test]
    fn accepts_well_formed_report() {
        validate_report_str(GOOD).unwrap();
        validate_any_str(GOOD).unwrap();
    }

    #[test]
    fn accepts_multi_run_document() {
        let doc = format!(r#"{{"version":1,"runs":[{GOOD},{GOOD}]}}"#);
        validate_any_str(&doc).unwrap();
        assert!(validate_runs(&crate::json::parse(&doc).unwrap()).is_ok());
    }

    #[test]
    fn accepts_version_2_and_stream_span_names() {
        let v2 = GOOD.replace("\"version\":1", "\"version\":2");
        validate_report_str(&v2).unwrap();
        let streamy = v2
            .replace("\"name\":\"run\"", "\"name\":\"stream.recluster\"")
            .replace("\"name\":\"iteration\"", "\"name\":\"stream.iteration\"");
        validate_report_str(&streamy).unwrap();
        let doc = format!(r#"{{"version":2,"runs":[{streamy}]}}"#);
        validate_any_str(&doc).unwrap();
    }

    #[test]
    fn rejects_span_names_outside_the_charset() {
        let bad = GOOD.replace("\"name\":\"iteration\"", "\"name\":\"iter ation!\"");
        assert!(validate_report_str(&bad).is_err());
    }

    #[test]
    fn rejects_bad_documents() {
        // Not JSON at all.
        assert!(validate_any_str("nope").is_err());
        // Unsupported version (2 is valid since the streaming schema).
        assert!(validate_report_str(r#"{"version":3,"meta":{},"totals":{},"spans":[]}"#).is_err());
        // Empty spans.
        assert!(validate_report_str(r#"{"version":1,"meta":{},"totals":{},"spans":[]}"#).is_err());
        // Negative counter.
        let bad = GOOD.replace("\"distances_computed\":9", "\"distances_computed\":-1");
        assert!(validate_report_str(&bad).is_err());
        // Fractional counter.
        let bad = GOOD.replace("\"distances_computed\":9", "\"distances_computed\":9.5");
        assert!(validate_report_str(&bad).is_err());
        // Missing span field.
        let bad = GOOD.replace("\"attrs\":{\"sim_us\":2.5},", "");
        assert!(validate_report_str(&bad).is_err());
        // Empty runs array.
        assert!(validate_any_str(r#"{"version":1,"runs":[]}"#).is_err());
    }

    #[test]
    fn validates_chrome_trace() {
        let good = r#"[{"name":"p","ph":"M","pid":0,"tid":0,"args":{"name":"x"}},
            {"name":"run","ph":"X","ts":0,"dur":5,"pid":0,"tid":0,"args":{}}]"#;
        validate_chrome_trace_str(good).unwrap();
        assert!(validate_chrome_trace_str(r#"[{"ph":"X"}]"#).is_err());
        assert!(validate_chrome_trace_str("{}").is_err());
    }
}
