//! The collecting recorder: builds the span tree a run leaves behind.

use std::collections::BTreeMap;
use std::time::Instant;

use proclus_verify::TrackedMutex;

use crate::recorder::{Recorder, SpanId};
use crate::report::{SpanNode, TelemetryReport};

#[derive(Debug)]
struct Node {
    name: String,
    start_us: f64,
    end_us: Option<f64>,
    counters: BTreeMap<String, u64>,
    attrs: BTreeMap<String, f64>,
    children: Vec<usize>,
}

#[derive(Debug, Default)]
struct Inner {
    nodes: Vec<Node>,
    /// Indices of currently-open spans, outermost first.
    stack: Vec<usize>,
    roots: Vec<usize>,
    totals: BTreeMap<String, u64>,
    meta: BTreeMap<String, String>,
}

/// The collecting [`Recorder`]: thread-safe (a [`TrackedMutex`] guards the
/// tree — spans and counters are recorded from the orchestrating thread, so
/// the lock is uncontended in practice, and under the `lockcheck` feature
/// every acquisition feeds the workspace lock-order graph) and cheap enough
/// to leave on for every instrumented run.
#[derive(Debug)]
pub struct Telemetry {
    t0: Instant,
    inner: TrackedMutex<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Creates an empty collector; the clock starts now.
    pub fn new() -> Self {
        Self {
            t0: Instant::now(),
            inner: TrackedMutex::new("telemetry.tree", Inner::default()),
        }
    }

    fn now_us(&self) -> f64 {
        self.t0.elapsed().as_secs_f64() * 1e6
    }

    /// Attaches a `key = value` metadata pair to the report (algorithm,
    /// backend, seed, dataset shape, …).
    pub fn set_meta(&self, key: &str, value: impl ToString) {
        let mut inner = self.inner.lock();
        inner.meta.insert(key.to_string(), value.to_string());
    }

    /// Closes any still-open spans and turns the collected tree into a
    /// [`TelemetryReport`].
    pub fn finish(self) -> TelemetryReport {
        let end = self.now_us();
        let mut inner = self.inner.into_inner();
        while let Some(idx) = inner.stack.pop() {
            inner.nodes[idx].end_us = Some(end);
        }
        let roots = inner.roots.clone();
        let spans = roots.iter().map(|&r| build_node(&inner.nodes, r)).collect();
        TelemetryReport {
            meta: inner.meta,
            totals: inner.totals,
            spans,
        }
    }
}

fn build_node(nodes: &[Node], idx: usize) -> SpanNode {
    let n = &nodes[idx];
    SpanNode {
        name: n.name.clone(),
        start_us: n.start_us,
        dur_us: n.end_us.unwrap_or(n.start_us) - n.start_us,
        counters: n.counters.clone(),
        attrs: n.attrs.clone(),
        children: n.children.iter().map(|&c| build_node(nodes, c)).collect(),
    }
}

impl Recorder for Telemetry {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &str) -> SpanId {
        let now = self.now_us();
        let mut inner = self.inner.lock();
        let idx = inner.nodes.len();
        inner.nodes.push(Node {
            name: name.to_string(),
            start_us: now,
            end_us: None,
            counters: BTreeMap::new(),
            attrs: BTreeMap::new(),
            children: Vec::new(),
        });
        match inner.stack.last().copied() {
            Some(parent) => inner.nodes[parent].children.push(idx),
            None => inner.roots.push(idx),
        }
        inner.stack.push(idx);
        SpanId(idx as u64 + 1)
    }

    fn span_end(&self, id: SpanId) {
        if id.is_null() {
            return;
        }
        let now = self.now_us();
        let target = (id.0 - 1) as usize;
        let mut inner = self.inner.lock();
        // Close the target and anything opened after it that leaked (the
        // guard discipline makes this a single pop in practice).
        while let Some(idx) = inner.stack.pop() {
            inner.nodes[idx].end_us = Some(now);
            if idx == target {
                break;
            }
        }
    }

    fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        *inner.totals.entry(name.to_string()).or_insert(0) += delta;
        if let Some(&top) = inner.stack.last() {
            *inner.nodes[top]
                .counters
                .entry(name.to_string())
                .or_insert(0) += delta;
        }
    }

    fn annotate(&self, id: SpanId, key: &str, value: f64) {
        if id.is_null() {
            return;
        }
        let idx = (id.0 - 1) as usize;
        let mut inner = self.inner.lock();
        if let Some(node) = inner.nodes.get_mut(idx) {
            *node.attrs.entry(key.to_string()).or_insert(0.0) += value;
        }
    }

    fn emit(&self, name: &str, counters: &[(&str, u64)], attrs: &[(&str, f64)]) {
        let now = self.now_us();
        let mut inner = self.inner.lock();
        let idx = inner.nodes.len();
        inner.nodes.push(Node {
            name: name.to_string(),
            start_us: now,
            end_us: Some(now),
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            children: Vec::new(),
        });
        match inner.stack.last().copied() {
            Some(parent) => inner.nodes[parent].children.push(idx),
            None => inner.roots.push(idx),
        }
        for (k, v) in counters {
            *inner.totals.entry(k.to_string()).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::span;

    #[test]
    fn builds_a_nested_tree_with_counters() {
        let tel = Telemetry::new();
        tel.set_meta("algo", "fast");
        {
            let _run = span(&tel, "run");
            {
                let _it = span(&tel, "iteration");
                let _ph = span(&tel, "compute_l");
                tel.add("distances_computed", 10);
            }
            tel.add("iterations", 1);
        }
        let report = tel.finish();
        assert_eq!(report.meta.get("algo").map(String::as_str), Some("fast"));
        assert_eq!(report.total("distances_computed"), 10);
        assert_eq!(report.total("iterations"), 1);
        assert_eq!(report.spans.len(), 1);
        let run = &report.spans[0];
        assert_eq!(run.name, "run");
        assert_eq!(run.children[0].name, "iteration");
        assert_eq!(run.children[0].children[0].name, "compute_l");
        assert_eq!(
            run.children[0].children[0]
                .counters
                .get("distances_computed"),
            Some(&10)
        );
        // The `iterations` counter landed on the still-open run span.
        assert_eq!(run.counters.get("iterations"), Some(&1));
        assert!(run.dur_us >= run.children[0].dur_us);
    }

    #[test]
    fn finish_closes_leaked_spans() {
        let tel = Telemetry::new();
        let _ = tel.span_start("run");
        let _ = tel.span_start("iteration");
        let report = tel.finish();
        assert!(report.spans[0].dur_us >= 0.0);
        assert!(report.spans[0].children[0].dur_us >= 0.0);
    }

    #[test]
    fn emit_attaches_instant_children_and_totals() {
        let tel = Telemetry::new();
        let run = tel.span_start("run");
        tel.emit("kernel:assign", &[("kernel_launches", 7)], &[("t", 3.5)]);
        tel.span_end(run);
        let report = tel.finish();
        let k = &report.spans[0].children[0];
        assert_eq!(k.name, "kernel:assign");
        assert_eq!(k.counters.get("kernel_launches"), Some(&7));
        assert_eq!(k.attrs.get("t"), Some(&3.5));
        assert_eq!(report.total("kernel_launches"), 7);
    }

    #[test]
    fn annotate_accumulates() {
        let tel = Telemetry::new();
        let id = tel.span_start("phase");
        tel.annotate(id, "sim_us", 2.0);
        tel.annotate(id, "sim_us", 3.0);
        tel.span_end(id);
        let report = tel.finish();
        assert_eq!(report.spans[0].attrs.get("sim_us"), Some(&5.0));
    }
}
