//! The [`Recorder`] trait: how algorithm code reports spans and counters
//! without knowing (or paying for) the collection machinery.

/// Opaque handle to an open span. `SpanId(0)` is the null span (returned by
/// disabled recorders); every real span has a non-zero id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// The null span handle (what disabled recorders hand out).
    pub const NULL: SpanId = SpanId(0);

    /// True for the null handle.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// Sink for spans, counters and annotations.
///
/// All methods take `&self` so a recorder can be shared down a call tree;
/// implementations use interior mutability. Hot paths should gate any
/// *preparation* work (e.g. diffing label arrays to count reassignments) on
/// [`Recorder::enabled`]; the calls themselves are no-ops on the
/// [`NullRecorder`].
pub trait Recorder {
    /// False when recording is off and call sites may skip counter
    /// preparation entirely.
    fn enabled(&self) -> bool;

    /// Opens a span named `name`, nested under the innermost open span.
    fn span_start(&self, name: &str) -> SpanId;

    /// Closes span `id` (and any spans opened after it that were leaked).
    fn span_end(&self, id: SpanId);

    /// Adds `delta` to counter `name` on the innermost open span and on the
    /// run totals.
    fn add(&self, name: &str, delta: u64);

    /// Adds `value` to float attribute `key` of span `id` (e.g. simulated
    /// device microseconds).
    fn annotate(&self, id: SpanId, key: &str, value: f64);

    /// Records an instantaneous child span of the innermost open span with
    /// pre-computed counters and attributes — used to bridge externally
    /// aggregated data (gpu-sim kernel statistics) into the tree.
    fn emit(&self, name: &str, counters: &[(&str, u64)], attrs: &[(&str, f64)]);
}

/// The disabled recorder: every operation is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn span_start(&self, _name: &str) -> SpanId {
        SpanId::NULL
    }
    fn span_end(&self, _id: SpanId) {}
    fn add(&self, _name: &str, _delta: u64) {}
    fn annotate(&self, _id: SpanId, _key: &str, _value: f64) {}
    fn emit(&self, _name: &str, _counters: &[(&str, u64)], _attrs: &[(&str, f64)]) {}
}

/// RAII guard closing its span on drop.
///
/// ```
/// use proclus_telemetry::{span, NullRecorder};
/// let rec = NullRecorder;
/// let guard = span(&rec, "phase");
/// drop(guard); // span closed
/// ```
pub struct SpanGuard<'r> {
    rec: &'r dyn Recorder,
    id: SpanId,
}

impl SpanGuard<'_> {
    /// The guarded span's id (for [`Recorder::annotate`]).
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.rec.span_end(self.id);
    }
}

/// Opens a span and returns the guard that closes it.
pub fn span<'r>(rec: &'r dyn Recorder, name: &str) -> SpanGuard<'r> {
    SpanGuard {
        id: rec.span_start(name),
        rec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let r = NullRecorder;
        assert!(!r.enabled());
        let id = r.span_start("x");
        assert!(id.is_null());
        r.add("c", 1);
        r.annotate(id, "a", 1.0);
        r.emit("e", &[("c", 1)], &[]);
        r.span_end(id);
    }

    #[test]
    fn span_guard_closes_on_drop() {
        // Closing behavior is asserted against the collecting recorder in
        // collect.rs; here we only check the guard compiles against dyn.
        let r = NullRecorder;
        let g = span(&r, "s");
        assert!(g.id().is_null());
    }
}
