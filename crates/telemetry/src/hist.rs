//! A small log-bucketed histogram for service latency distributions
//! (queue-wait, service-time) with approximate quantiles.
//!
//! Buckets grow geometrically (factor 2 per bucket below the linear floor
//! is unnecessary — we use power-of-two bucket boundaries on microsecond
//! values), so the memory footprint is 64 counters regardless of range and
//! a quantile is accurate to within one octave. That is plenty for p50/p99
//! service reporting and keeps the crate dependency-free.

/// Log₂-bucketed histogram over `u64` samples (typically microseconds).
///
/// ```
/// use proclus_telemetry::Histogram;
/// let mut h = Histogram::new();
/// for v in [10u64, 20, 30, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile(0.5) >= 10);
/// assert!(h.quantile(0.99) >= 512);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `buckets[b]` counts samples with `floor(log2(v)) == b` (bucket 0
    /// additionally holds `v == 0`).
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (63 - v.max(1).leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (`0` when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (`0` when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket holding the `ceil(q · count)`-th sample, clamped to the
    /// recorded maximum. Returns `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket b is 2^(b+1) − 1.
                let upper = if b >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (b + 1)) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn quantiles_are_within_one_octave() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!((256..=1023).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((512..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000); // clamped to the recorded max
    }

    #[test]
    fn zero_and_max_samples_do_not_panic() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn merge_combines_counts_and_max() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(4);
        b.record(4096);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 4096);
        assert!(a.quantile(0.99) >= 4096);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20);
    }
}
