//! Minimal hand-rolled JSON support (the repo has a no-serde policy).
//!
//! Emission helpers ([`escape`], [`fmt_f64`]) keep the writers in
//! `report.rs` small; the [`parse`] function is a full (if spartan) JSON
//! reader used by the schema validator and the round-trip tests.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects use `BTreeMap` so iteration order is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Looks up `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so the output is always valid JSON (no `NaN`/`inf`
/// tokens; integral values without an exponent).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parses a complete JSON document. Returns a description of the first
/// syntax error on failure.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid utf8 in number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid utf8 at byte {}", self.pos))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": null, "e": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let raw = "quote \" slash \\ newline \n tab \t ctrl \u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(raw));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(raw));
    }

    #[test]
    fn fmt_f64_is_json_safe() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(3.25), "3.25");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
        for s in [fmt_f64(1.5e-9), fmt_f64(1e20)] {
            assert!(parse(&s).is_ok(), "{s} should parse");
        }
    }

    #[test]
    fn unicode_escape() {
        let v = parse(r#""éA""#).unwrap();
        assert_eq!(v.as_str(), Some("éA"));
    }
}
